//! A minimal, dependency-free HTTP/1.1 listener serving `/metrics`.
//!
//! The repository builds without external crates, so this is a
//! deliberately small server: one accept-loop thread, one short-lived
//! handler per connection, `Connection: close` on every response. That
//! is all a Prometheus scraper (or `explore top`, or `curl`) needs, and
//! it keeps the run's hot path completely untouched — the only cost of
//! serving metrics is the scrape itself, which reads relaxed atomics.
//!
//! This module is the seed of a future `icb-server`: anything that wants
//! to expose more endpoints can grow the request match in
//! [`MetricsServer::start`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use icb_core::MetricsRegistry;

use crate::export::render_prometheus;

/// Per-connection I/O timeout: a stalled scraper must not pin the
/// accept thread's handler.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head we bother reading; a scrape request is tiny.
const MAX_REQUEST: usize = 8 * 1024;

/// An HTTP listener exposing a [`MetricsRegistry`] at `GET /metrics` in
/// Prometheus text-exposition format.
///
/// Start it with [`start`](MetricsServer::start), read the bound address
/// (port 0 resolves to an ephemeral port) with
/// [`addr`](MetricsServer::addr), stop it with
/// [`shutdown`](MetricsServer::shutdown). Dropping without shutdown
/// leaves the accept thread running until process exit — harmless for a
/// CLI, but tests should shut down explicitly.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept loop.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("icb-metrics-http".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Serve inline: scrapes are rare (seconds apart) and
                    // the page renders in microseconds, so one handler
                    // at a time is plenty and avoids unbounded threads.
                    let _ = handle_connection(stream, &registry);
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (the resolved port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // `incoming()` blocks in accept: poke it with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the end of the request head; the GET requests we serve
    // carry no body.
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > MAX_REQUEST {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let target = request
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("GET"), Some(path)) => Some(path.to_string()),
                _ => None,
            }
        })
        .unwrap_or_default();
    if target == "/metrics" || target == "/metrics/" {
        let body = render_prometheus(registry);
        write_response(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &body,
        )
    } else {
        write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics\n",
        )
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Fetches `/metrics` from a [`MetricsServer`] (or anything speaking the
/// same protocol) and returns the exposition body. The client side of
/// `explore top`.
pub fn scrape(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: metrics\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::other("malformed HTTP response"));
    };
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!(
            "metrics endpoint answered: {status}"
        )));
    }
    Ok(body.to_string())
}

/// Parses an exposition page into `(name-with-labels, value)` pairs,
/// skipping comments. Shared by `explore top` and the smoke tests.
pub fn parse_exposition(body: &str) -> Vec<(String, f64)> {
    body.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            let value = match value.trim() {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                v => v.parse().ok()?,
            };
            Some((name.trim().to_string(), value))
        })
        .collect()
}

/// Looks up a series by exact name (including labels) in a parsed page.
pub fn series_value(parsed: &[(String, f64)], name: &str) -> Option<f64> {
    parsed.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::{ExecStats, ExecutionOutcome};

    #[test]
    fn serves_metrics_and_rejects_other_paths() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_strategy("icb");
        registry.record_execution(7, &ExecStats::default(), &ExecutionOutcome::Terminated, 3);
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.addr();

        let body = scrape(addr).unwrap();
        assert!(body.contains("icb_executions_total 7"), "{body}");
        assert!(body.contains("# TYPE icb_executions_total counter"));

        // A wrong path gets a 404 and the connection still closes.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");

        // Scrapes observe live updates.
        registry.record_execution(9, &ExecStats::default(), &ExecutionOutcome::Terminated, 3);
        let body = scrape(addr).unwrap();
        assert!(body.contains("icb_executions_total 9"), "{body}");

        server.shutdown();
        assert!(scrape(addr).is_err(), "server must be gone after shutdown");
    }

    #[test]
    fn exposition_parses_back() {
        let registry = MetricsRegistry::new();
        registry.set_strategy("icb");
        registry.record_execution(4, &ExecStats::default(), &ExecutionOutcome::Terminated, 2);
        let page = crate::export::render_prometheus(&registry);
        let parsed = parse_exposition(&page);
        assert_eq!(series_value(&parsed, "icb_executions_total"), Some(4.0));
        assert_eq!(series_value(&parsed, "icb_distinct_states"), Some(2.0));
        assert_eq!(
            series_value(&parsed, "icb_info{strategy=\"icb\"}"),
            Some(1.0)
        );
        assert!(series_value(&parsed, "icb_missing").is_none());
    }
}
