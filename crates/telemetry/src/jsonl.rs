//! Streaming JSONL (one JSON object per line) event sink.

use std::io::Write;
use std::time::Duration;

use icb_core::search::{BoundStats, BugReport, SearchReport};
use icb_core::telemetry::AbortReason;
use icb_core::{ExecStats, ExecutionOutcome, SearchObserver};

/// Writes every search event as one JSON object per line.
///
/// The encoding is hand-rolled (the repository builds without external
/// crates) but standard: every line is a flat object with an `"event"`
/// tag matching [`Event::kind`](crate::Event::kind), and the remaining
/// fields mirror the hook arguments. Durations are reported in integer
/// nanoseconds, schedules as arrays of thread ids.
///
/// Write errors are recorded in [`failed`](JsonlSink::failed) and
/// subsequent events are dropped — telemetry must never abort a search.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    failed: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `out`. Wrap files in a
    /// [`std::io::BufWriter`]: searches emit thousands of events per
    /// second.
    pub fn new(out: W) -> Self {
        JsonlSink { out, failed: false }
    }

    /// Returns `true` if a write failed (later events were discarded).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn emit(&mut self, line: &str) {
        if self.failed {
            return;
        }
        if writeln!(self.out, "{line}").is_err() {
            self.failed = true;
        }
    }
}

/// Escapes `s` into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn outcome_fields(outcome: &ExecutionOutcome) -> String {
    let kind = match outcome {
        ExecutionOutcome::Terminated => "terminated",
        ExecutionOutcome::AssertionFailure { .. } => "assertion-failure",
        ExecutionOutcome::Deadlock { .. } => "deadlock",
        ExecutionOutcome::DataRace { .. } => "data-race",
        ExecutionOutcome::StepLimitExceeded => "step-limit-exceeded",
    };
    match outcome {
        ExecutionOutcome::Terminated | ExecutionOutcome::StepLimitExceeded => {
            format!("\"outcome\":\"{kind}\"")
        }
        other => format!(
            "\"outcome\":\"{kind}\",\"detail\":{}",
            json_string(&other.to_string())
        ),
    }
}

fn stats_fields(stats: &ExecStats) -> String {
    format!(
        "\"steps\":{},\"blocking_steps\":{},\"preemptions\":{},\"context_switches\":{}",
        stats.steps, stats.blocking_steps, stats.preemptions, stats.context_switches
    )
}

fn schedule_array(bug: &BugReport) -> String {
    let ids: Vec<String> = bug.schedule.iter().map(|t| t.index().to_string()).collect();
    format!("[{}]", ids.join(","))
}

impl<W: Write> SearchObserver for JsonlSink<W> {
    fn search_started(&mut self, strategy: &str) {
        let line = format!(
            "{{\"event\":\"search-started\",\"strategy\":{}}}",
            json_string(strategy)
        );
        self.emit(&line);
    }

    fn execution_started(&mut self, index: usize) {
        self.emit(&format!(
            "{{\"event\":\"execution-started\",\"index\":{index}}}"
        ));
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        let line = format!(
            "{{\"event\":\"execution-finished\",\"index\":{index},{},{},\
             \"distinct_states\":{distinct_states}}}",
            stats_fields(stats),
            outcome_fields(outcome),
        );
        self.emit(&line);
    }

    fn bound_started(&mut self, bound: usize, work_items: usize) {
        self.emit(&format!(
            "{{\"event\":\"bound-started\",\"bound\":{bound},\"work_items\":{work_items}}}"
        ));
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        let line = format!(
            "{{\"event\":\"bound-completed\",\"bound\":{},\"executions\":{},\
             \"cumulative_states\":{},\"bugs_found\":{},\"wall_time_ns\":{}}}",
            stats.bound,
            stats.executions,
            stats.cumulative_states,
            stats.bugs_found,
            wall_time.as_nanos(),
        );
        self.emit(&line);
    }

    fn bug_found(&mut self, bug: &BugReport) {
        let line = format!(
            "{{\"event\":\"bug-found\",\"execution_index\":{},\"preemptions\":{},\
             \"steps\":{},{},\"schedule\":{}}}",
            bug.execution_index,
            bug.preemptions,
            bug.steps,
            outcome_fields(&bug.outcome),
            schedule_array(bug),
        );
        self.emit(&line);
    }

    fn work_item_deferred(&mut self, next_bound: usize) {
        self.emit(&format!(
            "{{\"event\":\"work-item-deferred\",\"next_bound\":{next_bound}}}"
        ));
    }

    fn work_queue_depth(&mut self, depth: usize) {
        self.emit(&format!(
            "{{\"event\":\"work-queue-depth\",\"depth\":{depth}}}"
        ));
    }

    fn race_detected(&mut self, description: &str) {
        let line = format!(
            "{{\"event\":\"race-detected\",\"description\":{}}}",
            json_string(description)
        );
        self.emit(&line);
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        self.emit(&format!(
            "{{\"event\":\"search-aborted\",\"reason\":\"{reason}\"}}"
        ));
    }

    fn search_finished(&mut self, report: &SearchReport) {
        let line = format!(
            "{{\"event\":\"search-finished\",\"strategy\":{},\"executions\":{},\
             \"distinct_states\":{},\"buggy_executions\":{},\"bugs_reported\":{},\
             \"completed\":{},\"completed_bound\":{},\"truncated\":{}}}",
            json_string(&report.strategy),
            report.executions,
            report.distinct_states,
            report.buggy_executions,
            report.bugs.len(),
            report.completed,
            match report.completed_bound {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            report.truncated,
        );
        self.emit(&line);
        if !self.failed && self.out.flush().is_err() {
            self.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\t"), "\"line\\nbreak\\t\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.search_started("icb");
        sink.execution_started(1);
        sink.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 3);
        sink.search_aborted(AbortReason::FirstBug);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"event\":\"search-started\""));
        assert!(lines[2].contains("\"distinct_states\":3"));
        assert!(lines[3].contains("\"reason\":\"first-bug\""));
    }

    #[test]
    fn failed_writer_drops_later_events() {
        struct Fail;
        impl Write for Fail {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("down"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Fail);
        sink.execution_started(1);
        assert!(sink.failed());
        sink.execution_started(2); // must not panic
    }
}
