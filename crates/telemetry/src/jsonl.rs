//! Streaming JSONL (one JSON object per line) event sink.

use std::io::Write;
use std::time::{Duration, Instant};

use icb_core::search::{BoundStats, BugReport, QuarantinedTrace, SearchReport};
use icb_core::telemetry::{AbortReason, ResumeInfo};
use icb_core::{
    ChoiceKind, ExecStats, ExecutionOutcome, MetricsSnapshot, Phase, SearchObserver, SiteId,
};

/// Writes every search event as one JSON object per line.
///
/// The encoding is hand-rolled (the repository builds without external
/// crates) but standard: every line is a flat object with an `"event"`
/// tag matching [`Event::kind`](crate::Event::kind), and the remaining
/// fields mirror the hook arguments. Durations are reported in integer
/// nanoseconds, schedules as arrays of thread ids, preemption sites as
/// their [`SiteId`] display strings.
///
/// Profiler events (choice points, preemptions taken, phase times) are
/// off by default — they multiply the line count by the execution
/// length. Enable them with [`with_profile_events`]
/// (JsonlSink::with_profile_events); `explore report` then reconstructs
/// site attribution from the stream.
///
/// Write errors are recorded in [`failed`](JsonlSink::failed) and
/// subsequent events are dropped — telemetry must never abort a search.
/// The stream is flushed on `search_finished`, on `search_aborted`, and
/// on drop, so a run killed mid-search still leaves a readable log.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    /// `None` only after `into_inner` moved the writer out (the `Drop`
    /// impl must not flush a moved writer).
    out: Option<W>,
    failed: bool,
    profile: bool,
    started: Option<Instant>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `out`. Wrap files in a
    /// [`std::io::BufWriter`]: searches emit thousands of events per
    /// second.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Some(out),
            failed: false,
            profile: false,
            started: None,
        }
    }

    /// Enables (or disables) the per-step profiler events:
    /// `choice-point`, `preemption-taken`, and `phase-time` lines.
    pub fn with_profile_events(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Returns `true` if a write failed (later events were discarded).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer present until into_inner");
        let _ = out.flush();
        out
    }

    fn emit(&mut self, line: &str) {
        if self.failed {
            return;
        }
        let Some(out) = self.out.as_mut() else {
            return;
        };
        if writeln!(out, "{line}").is_err() {
            self.failed = true;
        }
    }

    fn flush(&mut self) {
        if self.failed {
            return;
        }
        let Some(out) = self.out.as_mut() else {
            return;
        };
        if out.flush().is_err() {
            self.failed = true;
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Escapes `s` into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn outcome_fields(outcome: &ExecutionOutcome) -> String {
    let kind = match outcome {
        ExecutionOutcome::Terminated => "terminated",
        ExecutionOutcome::AssertionFailure { .. } => "assertion-failure",
        ExecutionOutcome::Deadlock { .. } => "deadlock",
        ExecutionOutcome::DataRace { .. } => "data-race",
        ExecutionOutcome::StepLimitExceeded => "step-limit-exceeded",
        ExecutionOutcome::ReplayDivergence { .. } => "replay-divergence",
        ExecutionOutcome::WatchdogTimeout => "watchdog-timeout",
    };
    match outcome {
        ExecutionOutcome::Terminated
        | ExecutionOutcome::StepLimitExceeded
        | ExecutionOutcome::WatchdogTimeout => {
            format!("\"outcome\":\"{kind}\"")
        }
        other => format!(
            "\"outcome\":\"{kind}\",\"detail\":{}",
            json_string(&other.to_string())
        ),
    }
}

fn stats_fields(stats: &ExecStats) -> String {
    let mut fields = format!(
        "\"steps\":{},\"blocking_steps\":{},\"preemptions\":{},\"context_switches\":{}",
        stats.steps, stats.blocking_steps, stats.preemptions, stats.context_switches
    );
    // Only faulted executions carry the field: fault-free runs (every
    // run at fault bound 0) keep their pre-fault byte layout.
    if stats.faults > 0 {
        fields.push_str(&format!(",\"faults\":{}", stats.faults));
    }
    fields
}

fn schedule_array(schedule: &icb_core::Schedule) -> String {
    let ids: Vec<String> = schedule.iter().map(|t| t.index().to_string()).collect();
    format!("[{}]", ids.join(","))
}

fn tid_array(tids: &[icb_core::Tid]) -> String {
    let ids: Vec<String> = tids.iter().map(|t| t.index().to_string()).collect();
    format!("[{}]", ids.join(","))
}

impl<W: Write> SearchObserver for JsonlSink<W> {
    fn search_started(&mut self, strategy: &str) {
        self.started = Some(Instant::now());
        let line = format!(
            "{{\"event\":\"search-started\",\"strategy\":{}}}",
            json_string(strategy)
        );
        self.emit(&line);
    }

    fn wants_choice_points(&self) -> bool {
        self.profile
    }

    fn wants_phase_timing(&self) -> bool {
        self.profile
    }

    fn choice_point(&mut self, site: SiteId, bound: usize, kind: ChoiceKind) {
        if !self.profile {
            return;
        }
        let line = format!(
            "{{\"event\":\"choice-point\",\"site\":{},\"bound\":{bound},\"kind\":\"{}\"}}",
            json_string(&site.to_string()),
            kind.as_str(),
        );
        self.emit(&line);
    }

    fn preemption_taken(&mut self, site: SiteId) {
        if !self.profile {
            return;
        }
        let line = format!(
            "{{\"event\":\"preemption-taken\",\"site\":{}}}",
            json_string(&site.to_string())
        );
        self.emit(&line);
    }

    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
        if !self.profile {
            return;
        }
        let line = format!(
            "{{\"event\":\"phase-time\",\"phase\":\"{}\",\"elapsed_ns\":{}}}",
            phase.as_str(),
            elapsed.as_nanos(),
        );
        self.emit(&line);
    }

    fn execution_started(&mut self, index: usize) {
        self.emit(&format!(
            "{{\"event\":\"execution-started\",\"index\":{index}}}"
        ));
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        let line = format!(
            "{{\"event\":\"execution-finished\",\"index\":{index},{},{},\
             \"distinct_states\":{distinct_states}}}",
            stats_fields(stats),
            outcome_fields(outcome),
        );
        self.emit(&line);
    }

    fn bound_started(&mut self, bound: usize, work_items: usize) {
        self.emit(&format!(
            "{{\"event\":\"bound-started\",\"bound\":{bound},\"work_items\":{work_items}}}"
        ));
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        // The fault level appears only on levels that inject: a search
        // at fault bound 0 emits the exact pre-fault byte layout.
        let faults = if stats.faults > 0 {
            format!("\"faults\":{},", stats.faults)
        } else {
            String::new()
        };
        let line = format!(
            "{{\"event\":\"bound-completed\",\"bound\":{},{faults}\"executions\":{},\
             \"cumulative_states\":{},\"bugs_found\":{},\"wall_time_ns\":{}}}",
            stats.bound,
            stats.executions,
            stats.cumulative_states,
            stats.bugs_found,
            wall_time.as_nanos(),
        );
        self.emit(&line);
    }

    fn bug_found(&mut self, bug: &BugReport) {
        // Fault-free witnesses keep the pre-fault byte layout; faulted
        // ones additionally record which schedule steps injected.
        let faults = if bug.faults > 0 {
            let steps: Vec<String> = bug
                .schedule
                .faults()
                .iter()
                .map(|s| s.to_string())
                .collect();
            format!(
                "\"faults\":{},\"fault_steps\":[{}],",
                bug.faults,
                steps.join(",")
            )
        } else {
            String::new()
        };
        let line = format!(
            "{{\"event\":\"bug-found\",\"execution_index\":{},\"preemptions\":{},\
             {faults}\"steps\":{},{},\"schedule\":{}}}",
            bug.execution_index,
            bug.preemptions,
            bug.steps,
            outcome_fields(&bug.outcome),
            schedule_array(&bug.schedule),
        );
        self.emit(&line);
    }

    fn fault_injected(&mut self, site: SiteId, step: usize) {
        let line = format!(
            "{{\"event\":\"fault-injected\",\"site\":{},\"step\":{step}}}",
            json_string(&site.to_string())
        );
        self.emit(&line);
    }

    fn worker_panic(&mut self, worker: usize, message: &str) {
        let line = format!(
            "{{\"event\":\"worker-panic\",\"worker\":{worker},\"message\":{}}}",
            json_string(message)
        );
        self.emit(&line);
        // A panicking workload may be about to take the process down on
        // the retry; make sure the first observation reaches disk.
        self.flush();
    }

    fn search_resumed(&mut self, info: &ResumeInfo) {
        let line = format!(
            "{{\"event\":\"search-resumed\",\"executions\":{},\"distinct_states\":{},\
             \"bound\":{},\"bound_executions\":{}}}",
            info.executions, info.distinct_states, info.bound, info.bound_executions,
        );
        self.emit(&line);
    }

    fn checkpoint_written(&mut self, executions: usize) {
        self.emit(&format!(
            "{{\"event\":\"checkpoint-written\",\"executions\":{executions}}}"
        ));
        // A checkpoint marks a moment the process may not outlive; make
        // sure the log on disk covers at least as much as the snapshot.
        self.flush();
    }

    fn trace_quarantined(&mut self, quarantined: &QuarantinedTrace) {
        let line = format!(
            "{{\"event\":\"trace-quarantined\",\"step\":{},\"expected\":{},\
             \"actual\":{},\"schedule\":{}}}",
            quarantined.step,
            quarantined.expected.index(),
            tid_array(&quarantined.actual),
            schedule_array(&quarantined.schedule),
        );
        self.emit(&line);
    }

    fn worker_stamp(&mut self, worker: usize, seq: u64, at: Duration) {
        self.emit(&format!(
            "{{\"event\":\"worker-stamp\",\"worker\":{worker},\"seq\":{seq},\"at_ns\":{}}}",
            at.as_nanos()
        ));
    }

    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        let arr = |f: fn(&icb_core::WorkerStats) -> u64| -> String {
            let vals: Vec<String> = snapshot.workers.iter().map(|w| f(w).to_string()).collect();
            format!("[{}]", vals.join(","))
        };
        let line = format!(
            "{{\"event\":\"metrics-snapshot\",\"elapsed_ns\":{},\"executions\":{},\
             \"distinct_states\":{},\"bound\":{},\"bound_executions\":{},\
             \"frontier_len\":{},\"pump_channel_depth\":{},\"eta_seconds\":{},\
             \"worker_busy_ns\":{},\"worker_idle_ns\":{},\"worker_executions\":{}}}",
            snapshot.elapsed.as_nanos(),
            snapshot.executions,
            snapshot.distinct_states,
            match snapshot.bound {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            snapshot.bound_executions,
            snapshot.frontier_len,
            snapshot.pump_channel_depth,
            match snapshot.eta_seconds {
                Some(eta) if eta.is_finite() => format!("{eta:.3}"),
                _ => "null".to_string(),
            },
            arr(|w| w.busy_ns),
            arr(|w| w.idle_ns),
            arr(|w| w.executions),
        );
        self.emit(&line);
    }

    fn work_item_deferred(&mut self, next_bound: usize) {
        self.emit(&format!(
            "{{\"event\":\"work-item-deferred\",\"next_bound\":{next_bound}}}"
        ));
    }

    fn work_queue_depth(&mut self, depth: usize) {
        self.emit(&format!(
            "{{\"event\":\"work-queue-depth\",\"depth\":{depth}}}"
        ));
    }

    fn cache_hit(&mut self, count: usize) {
        self.emit(&format!("{{\"event\":\"cache-hit\",\"count\":{count}}}"));
    }

    fn cache_store(&mut self, count: usize) {
        self.emit(&format!("{{\"event\":\"cache-store\",\"count\":{count}}}"));
    }

    fn bound_certified(&mut self, bound: Option<usize>) {
        self.emit(&format!(
            "{{\"event\":\"bound-certified\",\"bound\":{}}}",
            match bound {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            }
        ));
    }

    fn race_detected(&mut self, description: &str) {
        let line = format!(
            "{{\"event\":\"race-detected\",\"description\":{}}}",
            json_string(description)
        );
        self.emit(&line);
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        self.emit(&format!(
            "{{\"event\":\"search-aborted\",\"reason\":\"{reason}\"}}"
        ));
        // An abort may be the last event the process lives to write
        // (ctrl-C handlers, budget exhaustion before teardown): persist.
        self.flush();
    }

    fn search_finished(&mut self, report: &SearchReport) {
        let elapsed_ns = self
            .started
            .map_or("null".to_string(), |t| t.elapsed().as_nanos().to_string());
        let cache = report.cache.as_ref().map_or(String::new(), |c| {
            format!(
                "\"cache_hits\":{},\"cache_stores\":{},\"cache_heuristic\":{},\
                 \"cache_certified\":{},",
                c.hits, c.stores, c.heuristic, c.certified,
            )
        });
        let line = format!(
            "{{\"event\":\"search-finished\",\"strategy\":{},\"executions\":{},\
             \"distinct_states\":{},\"buggy_executions\":{},\"bugs_reported\":{},\
             \"completed\":{},\"completed_bound\":{},\"truncated\":{},{cache}\"elapsed_ns\":{}}}",
            json_string(&report.strategy),
            report.executions,
            report.distinct_states,
            report.buggy_executions,
            report.bugs.len(),
            report.completed,
            match report.completed_bound {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            report.truncated,
            elapsed_ns,
        );
        self.emit(&line);
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\t"), "\"line\\nbreak\\t\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.search_started("icb");
        sink.execution_started(1);
        sink.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 3);
        sink.search_aborted(AbortReason::FirstBug);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"event\":\"search-started\""));
        assert!(lines[2].contains("\"distinct_states\":3"));
        assert!(lines[3].contains("\"reason\":\"first-bug\""));
    }

    #[test]
    fn failed_writer_drops_later_events() {
        struct Fail;
        impl Write for Fail {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("down"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Fail);
        sink.execution_started(1);
        assert!(sink.failed());
        sink.execution_started(2); // must not panic
    }

    #[test]
    fn profile_events_are_gated() {
        let mut sink = JsonlSink::new(Vec::new());
        assert!(!sink.wants_choice_points());
        sink.choice_point(SiteId::op("acquire", 3), 1, ChoiceKind::Preemption);
        sink.preemption_taken(SiteId::UNKNOWN);
        sink.phase_time(Phase::Replay, Duration::from_nanos(7));
        assert!(String::from_utf8(sink.into_inner()).unwrap().is_empty());

        let mut sink = JsonlSink::new(Vec::new()).with_profile_events(true);
        assert!(sink.wants_choice_points());
        assert!(sink.wants_phase_timing());
        sink.choice_point(SiteId::op("acquire", 3), 1, ChoiceKind::Preemption);
        sink.preemption_taken(SiteId::at(0, "load", 14));
        sink.phase_time(Phase::Replay, Duration::from_nanos(7));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"site\":\"acquire#3\""));
        assert!(lines[0].contains("\"kind\":\"preemption\""));
        assert!(lines[1].contains("\"site\":\"t0:load@14\""));
        assert!(lines[2].contains("\"phase\":\"replay\""));
        assert!(lines[2].contains("\"elapsed_ns\":7"));
    }

    #[test]
    fn abort_flushes_through_a_buffered_writer() {
        use std::io::BufWriter;
        use std::sync::{Arc, Mutex};

        /// Shares its buffer so we can observe what reached the "file"
        /// even while the sink (and its BufWriter) are still alive.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::new(BufWriter::with_capacity(64 * 1024, buf.clone()));
        sink.search_started("icb");
        sink.execution_started(1);
        // Nothing has reached the backing store yet (64 KiB buffer).
        assert!(buf.0.lock().unwrap().is_empty());
        sink.search_aborted(AbortReason::FirstBug);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.lines().count() == 3, "abort must flush: {text:?}");
        assert!(text.contains("\"event\":\"search-aborted\""));
    }

    #[test]
    fn drop_flushes_a_killed_run() {
        use std::io::BufWriter;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        {
            let mut sink = JsonlSink::new(BufWriter::with_capacity(64 * 1024, buf.clone()));
            sink.search_started("icb");
            sink.execution_started(1);
            // Simulated kill mid-run: the sink is dropped without ever
            // seeing search_finished or search_aborted.
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2, "drop must flush: {text:?}");
        assert!(text.contains("\"event\":\"execution-started\""));
    }

    #[test]
    fn resilience_events_are_encoded() {
        use icb_core::{Schedule, Tid};

        let mut sink = JsonlSink::new(Vec::new());
        sink.search_resumed(&ResumeInfo {
            executions: 120,
            distinct_states: 37,
            bound: 2,
            bound_executions: 20,
        });
        sink.checkpoint_written(150);
        sink.trace_quarantined(&QuarantinedTrace {
            schedule: Schedule::from(vec![Tid(0), Tid(1)]),
            step: 1,
            expected: Tid(1),
            actual: vec![Tid(0)],
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"search-resumed\""), "{text}");
        assert!(lines[0].contains("\"executions\":120"));
        assert!(lines[0].contains("\"bound\":2"));
        assert!(lines[1].contains("\"event\":\"checkpoint-written\""));
        assert!(lines[1].contains("\"executions\":150"));
        assert!(lines[2].contains("\"event\":\"trace-quarantined\""));
        assert!(lines[2].contains("\"expected\":1"));
        assert!(lines[2].contains("\"schedule\":[0,1]"));
    }

    #[test]
    fn checkpoint_written_flushes_the_stream() {
        use std::io::BufWriter;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::new(BufWriter::with_capacity(64 * 1024, buf.clone()));
        sink.search_started("icb");
        sink.checkpoint_written(10);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(
            text.contains("\"event\":\"checkpoint-written\""),
            "the log must cover at least as much as the snapshot: {text:?}"
        );
    }

    #[test]
    fn new_outcomes_have_kebab_kinds() {
        use icb_core::Tid;

        let mut sink = JsonlSink::new(Vec::new());
        sink.execution_finished(
            1,
            &ExecStats::default(),
            &ExecutionOutcome::ReplayDivergence {
                step: 3,
                expected: Tid(1),
                actual: vec![Tid(0)],
            },
            1,
        );
        sink.execution_finished(
            2,
            &ExecStats::default(),
            &ExecutionOutcome::WatchdogTimeout,
            1,
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"outcome\":\"replay-divergence\""), "{text}");
        assert!(text.contains("\"outcome\":\"watchdog-timeout\""), "{text}");
    }

    #[test]
    fn cache_events_are_encoded() {
        use icb_core::search::CacheSummary;

        let mut sink = JsonlSink::new(Vec::new());
        sink.cache_store(2);
        sink.cache_hit(5);
        sink.bound_certified(Some(2));
        sink.bound_certified(None);
        sink.search_finished(&SearchReport {
            strategy: "icb".to_string(),
            cache: Some(CacheSummary {
                hits: 5,
                stores: 2,
                heuristic: false,
                certified: false,
            }),
            ..SearchReport::default()
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"event\":\"cache-store\",\"count\":2}");
        assert_eq!(lines[1], "{\"event\":\"cache-hit\",\"count\":5}");
        assert_eq!(lines[2], "{\"event\":\"bound-certified\",\"bound\":2}");
        assert_eq!(lines[3], "{\"event\":\"bound-certified\",\"bound\":null}");
        assert!(lines[4].contains("\"cache_hits\":5"), "{text}");
        assert!(lines[4].contains("\"cache_stores\":2"));
        assert!(lines[4].contains("\"cache_heuristic\":false"));
        assert!(lines[4].contains("\"cache_certified\":false"));

        // Without a cache attached, the fields are absent entirely.
        let mut sink = JsonlSink::new(Vec::new());
        sink.search_finished(&SearchReport::default());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(!text.contains("cache_hits"), "{text}");
    }

    #[test]
    fn fault_events_are_encoded_and_absent_when_fault_free() {
        use icb_core::{Schedule, Tid};

        // Fault-free stats and bugs: byte-identical to the pre-fault
        // layout (no "faults" key anywhere).
        let mut sink = JsonlSink::new(Vec::new());
        sink.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 1);
        sink.bound_completed(
            &BoundStats {
                bound: 1,
                faults: 0,
                executions: 3,
                cumulative_states: 2,
                bugs_found: 0,
            },
            Duration::from_nanos(9),
        );
        sink.bug_found(&BugReport {
            outcome: ExecutionOutcome::Terminated,
            schedule: Schedule::from(vec![Tid(0)]),
            preemptions: 0,
            faults: 0,
            execution_index: 1,
            steps: 1,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(!text.contains("fault"), "fault-free must be silent: {text}");

        // Faulted: counts, injection sites and witness steps all appear.
        let mut sink = JsonlSink::new(Vec::new());
        let stats = ExecStats {
            faults: 2,
            ..ExecStats::default()
        };
        sink.execution_finished(1, &stats, &ExecutionOutcome::Terminated, 1);
        sink.fault_injected(SiteId::op("try-acquire", 3), 5);
        sink.bound_completed(
            &BoundStats {
                bound: 1,
                faults: 1,
                executions: 3,
                cumulative_states: 2,
                bugs_found: 1,
            },
            Duration::from_nanos(9),
        );
        let mut schedule = Schedule::from(vec![Tid(0), Tid(1)]);
        schedule.add_fault(1);
        sink.bug_found(&BugReport {
            outcome: ExecutionOutcome::Terminated,
            schedule,
            preemptions: 0,
            faults: 1,
            execution_index: 2,
            steps: 2,
        });
        sink.worker_panic(3, "worker died: index out of bounds");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"faults\":2"), "{text}");
        assert_eq!(
            lines[1],
            "{\"event\":\"fault-injected\",\"site\":\"try-acquire#3\",\"step\":5}"
        );
        assert!(lines[2].contains("\"bound\":1,\"faults\":1,"), "{text}");
        assert!(
            lines[3].contains("\"faults\":1,\"fault_steps\":[1],"),
            "{text}"
        );
        assert!(
            lines[4].contains("\"event\":\"worker-panic\",\"worker\":3"),
            "{text}"
        );
        assert!(lines[4].contains("index out of bounds"), "{text}");
    }

    #[test]
    fn search_finished_reports_elapsed() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.search_started("icb");
        sink.search_finished(&SearchReport {
            strategy: "icb".to_string(),
            ..SearchReport::default()
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"elapsed_ns\":"));
        assert!(!last.contains("\"elapsed_ns\":null"));
    }
}
