//! Fan one event stream out to several observers.

use std::time::Duration;

use icb_core::search::{BoundStats, BugReport, QuarantinedTrace, SearchReport};
use icb_core::telemetry::{AbortReason, ResumeInfo};
use icb_core::{
    ChoiceKind, ExecStats, ExecutionOutcome, MetricsSnapshot, Phase, SearchObserver, SiteId,
};

/// Forwards every event to each contained observer, in insertion order.
///
/// This is what lets the CLI attach a [`JsonlSink`](crate::JsonlSink)
/// and a [`ProgressReporter`](crate::ProgressReporter) to the same
/// search.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn SearchObserver>,
}

impl std::fmt::Debug for MultiObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiObserver")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<'a> MultiObserver<'a> {
    /// An empty fan-out (equivalent to a no-op observer).
    pub fn new() -> Self {
        MultiObserver::default()
    }

    /// Adds an observer to the fan-out.
    pub fn push(&mut self, observer: &'a mut dyn SearchObserver) {
        self.observers.push(observer);
    }

    /// Builder-style [`push`](MultiObserver::push).
    pub fn with(mut self, observer: &'a mut dyn SearchObserver) -> Self {
        self.push(observer);
        self
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Returns `true` if no observer is attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl SearchObserver for MultiObserver<'_> {
    fn search_started(&mut self, strategy: &str) {
        for o in &mut self.observers {
            o.search_started(strategy);
        }
    }

    fn execution_started(&mut self, index: usize) {
        for o in &mut self.observers {
            o.execution_started(index);
        }
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        for o in &mut self.observers {
            o.execution_finished(index, stats, outcome, distinct_states);
        }
    }

    fn bound_started(&mut self, bound: usize, work_items: usize) {
        for o in &mut self.observers {
            o.bound_started(bound, work_items);
        }
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        for o in &mut self.observers {
            o.bound_completed(stats, wall_time);
        }
    }

    fn bug_found(&mut self, bug: &BugReport) {
        for o in &mut self.observers {
            o.bug_found(bug);
        }
    }

    fn work_item_deferred(&mut self, next_bound: usize) {
        for o in &mut self.observers {
            o.work_item_deferred(next_bound);
        }
    }

    fn work_queue_depth(&mut self, depth: usize) {
        for o in &mut self.observers {
            o.work_queue_depth(depth);
        }
    }

    fn race_detected(&mut self, description: &str) {
        for o in &mut self.observers {
            o.race_detected(description);
        }
    }

    fn wants_choice_points(&self) -> bool {
        self.observers.iter().any(|o| o.wants_choice_points())
    }

    fn wants_phase_timing(&self) -> bool {
        self.observers.iter().any(|o| o.wants_phase_timing())
    }

    fn choice_point(&mut self, site: SiteId, bound: usize, kind: ChoiceKind) {
        for o in &mut self.observers {
            o.choice_point(site, bound, kind);
        }
    }

    fn preemption_taken(&mut self, site: SiteId) {
        for o in &mut self.observers {
            o.preemption_taken(site);
        }
    }

    fn fault_injected(&mut self, site: SiteId, step: usize) {
        for o in &mut self.observers {
            o.fault_injected(site, step);
        }
    }

    fn worker_panic(&mut self, worker: usize, message: &str) {
        for o in &mut self.observers {
            o.worker_panic(worker, message);
        }
    }

    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
        for o in &mut self.observers {
            o.phase_time(phase, elapsed);
        }
    }

    fn search_resumed(&mut self, info: &ResumeInfo) {
        for o in &mut self.observers {
            o.search_resumed(info);
        }
    }

    fn checkpoint_written(&mut self, executions: usize) {
        for o in &mut self.observers {
            o.checkpoint_written(executions);
        }
    }

    fn worker_stamp(&mut self, worker: usize, seq: u64, at: Duration) {
        for o in &mut self.observers {
            o.worker_stamp(worker, seq, at);
        }
    }

    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        for o in &mut self.observers {
            o.metrics_snapshot(snapshot);
        }
    }

    fn trace_quarantined(&mut self, quarantined: &QuarantinedTrace) {
        for o in &mut self.observers {
            o.trace_quarantined(quarantined);
        }
    }

    fn cache_hit(&mut self, count: usize) {
        for o in &mut self.observers {
            o.cache_hit(count);
        }
    }

    fn cache_store(&mut self, count: usize) {
        for o in &mut self.observers {
            o.cache_store(count);
        }
    }

    fn bound_certified(&mut self, bound: Option<usize>) {
        for o in &mut self.observers {
            o.bound_certified(bound);
        }
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        for o in &mut self.observers {
            o.search_aborted(reason);
        }
    }

    fn search_finished(&mut self, report: &SearchReport) {
        for o in &mut self.observers {
            o.search_finished(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLog;

    #[test]
    fn forwards_to_every_observer() {
        let mut a = EventLog::new();
        let mut b = EventLog::new();
        {
            let mut multi = MultiObserver::new().with(&mut a).with(&mut b);
            assert_eq!(multi.len(), 2);
            multi.search_started("icb");
            multi.execution_started(1);
        }
        assert_eq!(a.events().len(), 2);
        assert_eq!(b.events().len(), 2);
    }

    #[test]
    fn profiling_gates_are_any_over_members() {
        use icb_core::NoopObserver;

        let mut quiet = NoopObserver;
        let multi = MultiObserver::new().with(&mut quiet);
        assert!(!multi.wants_choice_points());
        assert!(!multi.wants_phase_timing());

        let mut quiet = NoopObserver;
        let mut log = EventLog::new(); // wants everything
        let mut multi = MultiObserver::new().with(&mut quiet).with(&mut log);
        assert!(multi.wants_choice_points());
        assert!(multi.wants_phase_timing());
        multi.choice_point(SiteId::op("acquire", 0), 1, ChoiceKind::Switch);
        multi.preemption_taken(SiteId::UNKNOWN);
        multi.phase_time(Phase::Selection, Duration::from_nanos(1));
        drop(multi);
        assert_eq!(log.events().len(), 3);
    }
}
