//! Paper-style run reports: reconstruction from JSONL telemetry and
//! text/Markdown rendering.
//!
//! A [`RunReport`] is the plain-data summary of one search run — totals,
//! per-bound rows (the shape of the paper's Figure 7), per-site
//! preemption attribution, and wall-clock phase totals. It can be built
//! two ways:
//!
//! * live, by attaching an
//!   [`ExplorationProfiler`](crate::ExplorationProfiler) to the search;
//! * after the fact, by [`RunReport::from_jsonl`] over a log written by
//!   [`JsonlSink`](crate::JsonlSink) — including logs of runs that were
//!   aborted or killed mid-search.
//!
//! [`render_text`] and [`render_markdown`] turn one or more reports into
//! the tables `explore report` prints; multiple reports additionally get
//! a strategy-comparison table (the shape of Figure 8).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Display;
use std::time::Duration;

/// One preemption bound's results — the row shape of the paper's
/// Figure 7 (executions, cumulative distinct states, bugs per bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundRow {
    /// The preemption bound.
    pub bound: usize,
    /// Executions explored at this bound.
    pub executions: usize,
    /// Cumulative distinct states after completing this bound.
    pub cumulative_states: usize,
    /// Bugs first observed at this bound.
    pub bugs_found: usize,
    /// Wall time spent inside the bound, when recorded.
    pub wall_time: Option<Duration>,
}

/// Exploration counters attributed to one program site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteRow {
    /// The site's display label (see [`icb_core::SiteId`]).
    pub site: String,
    /// Scheduling choices that executed an operation of this site.
    pub choices: usize,
    /// Executions in which the site appeared at least once.
    pub executions: usize,
    /// Preemptions that interrupted an operation of this site.
    pub preemptions: usize,
    /// Faults injected at an operation of this site.
    pub faults: usize,
    /// Distinct states newly discovered by executions that preempted
    /// this site (each such execution's coverage delta is credited to
    /// every site it preempted).
    pub states_unlocked: usize,
}

/// Wall-clock totals by search phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Re-executing the program (the stateless checker's dominant cost).
    pub replay: Duration,
    /// Inside the strategy's `Scheduler::pick`.
    pub selection: Duration,
    /// Inside the happens-before race detector.
    pub race_detection: Duration,
}

impl PhaseTotals {
    /// Sum of the three phases.
    pub fn sum(&self) -> Duration {
        self.replay + self.selection + self.race_detection
    }

    /// Adds `elapsed` to the phase's total.
    pub fn add(&mut self, phase: icb_core::Phase, elapsed: Duration) {
        match phase {
            icb_core::Phase::Replay => self.replay += elapsed,
            icb_core::Phase::Selection => self.selection += elapsed,
            icb_core::Phase::RaceDetection => self.race_detection += elapsed,
        }
    }
}

/// One point of the throughput-over-time series, taken from a
/// `metrics-snapshot` event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThroughputSample {
    /// Wall time into the run (segment-local in a raw report; offset to
    /// chain time by [`RunReport::stitch`]).
    pub elapsed: Duration,
    /// Cumulative executions at that instant.
    pub executions: usize,
}

/// One worker's cumulative busy/idle split, from the last
/// `metrics-snapshot` of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerUtilRow {
    /// Worker index (0-based).
    pub worker: usize,
    /// Time spent executing schedules.
    pub busy: Duration,
    /// Time spent waiting for work.
    pub idle: Duration,
    /// Executions completed by this worker.
    pub executions: usize,
}

impl WorkerUtilRow {
    /// busy / (busy + idle), `None` before the worker did anything.
    pub fn utilization(&self) -> Option<f64> {
        let total = self.busy + self.idle;
        if total.is_zero() {
            None
        } else {
            Some(self.busy.as_secs_f64() / total.as_secs_f64())
        }
    }
}

/// Everything `explore report` knows about one run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Strategy label (`icb`, `dfs`, `db:40`, …).
    pub strategy: String,
    /// Total executions performed.
    pub executions: usize,
    /// Distinct state fingerprints visited.
    pub distinct_states: usize,
    /// Executions that ended in a bug.
    pub buggy_executions: usize,
    /// Bug reports recorded (capped by the search config).
    pub bugs_reported: usize,
    /// Whether the schedule space was exhausted within the limits.
    pub completed: bool,
    /// Whether work was dropped (queue cap) — coverage is a lower bound.
    pub truncated: bool,
    /// Why the search stopped early, if it did.
    pub aborted: Option<String>,
    /// Total search wall time, when recorded.
    pub elapsed: Option<Duration>,
    /// Per-bound rows (ICB only; empty for other strategies).
    pub bounds: Vec<BoundRow>,
    /// Per-site attribution, hottest (most preempted) first.
    pub sites: Vec<SiteRow>,
    /// Wall-clock phase totals (all zero when profiling was off).
    pub phases: PhaseTotals,
    /// Schedule prefixes quarantined in this segment after replay
    /// diverged (infrastructure failures, not program bugs).
    pub quarantined: usize,
    /// Executions abandoned by the per-execution wall-clock watchdog.
    pub watchdog_trips: usize,
    /// Checkpoints durably written during this segment.
    pub checkpoints: usize,
    /// Cumulative executions inherited from a checkpoint, when this
    /// segment started with `explore resume`.
    pub resumed_from: Option<usize>,
    /// Work items pruned by the fingerprint cache.
    pub cache_hits: usize,
    /// New subtree entries the fingerprint cache recorded.
    pub cache_stores: usize,
    /// Whether cache pruning used heuristic fingerprints — coverage is
    /// then a lower bound, not an exhaustiveness claim.
    pub cache_heuristic: bool,
    /// Whether the certification ledger answered the run without
    /// executing anything.
    pub cache_certified: bool,
    /// Throughput-over-time samples from `metrics-snapshot` events
    /// (empty when the run had no metrics registry attached).
    pub throughput: Vec<ThroughputSample>,
    /// Per-worker busy/idle split from the run's last `metrics-snapshot`.
    pub worker_utilization: Vec<WorkerUtilRow>,
}

/// Incremental per-site attribution, shared between the live profiler
/// (keyed by [`icb_core::SiteId`]) and JSONL reconstruction (keyed by
/// the site display string).
#[derive(Clone, Debug)]
pub(crate) struct Attribution<K: Ord> {
    sites: BTreeMap<K, Counters>,
    exec_sites: BTreeSet<K>,
    exec_preemptions: Vec<K>,
    last_states: usize,
}

#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    choices: usize,
    executions: usize,
    preemptions: usize,
    faults: usize,
    states_unlocked: usize,
}

impl<K: Ord + Clone> Attribution<K> {
    pub(crate) fn new() -> Self {
        Attribution {
            sites: BTreeMap::new(),
            exec_sites: BTreeSet::new(),
            exec_preemptions: Vec::new(),
            last_states: 0,
        }
    }

    /// A scheduling choice executed an operation of `site`.
    pub(crate) fn choice(&mut self, site: K) {
        self.sites.entry(site.clone()).or_default().choices += 1;
        self.exec_sites.insert(site);
    }

    /// A preemption interrupted an operation of `site`.
    pub(crate) fn preemption(&mut self, site: K) {
        self.sites.entry(site.clone()).or_default().preemptions += 1;
        self.exec_preemptions.push(site);
    }

    /// A fault was injected at an operation of `site`.
    pub(crate) fn fault(&mut self, site: K) {
        self.sites.entry(site.clone()).or_default().faults += 1;
        self.exec_sites.insert(site);
    }

    /// Closes the current execution: attributes it to every site it
    /// touched, and credits its coverage delta to the sites it preempted.
    pub(crate) fn execution_finished(&mut self, distinct_states: usize) {
        let delta = distinct_states.saturating_sub(self.last_states);
        self.last_states = distinct_states;
        for site in std::mem::take(&mut self.exec_sites) {
            self.sites
                .get_mut(&site)
                .expect("touched site is registered")
                .executions += 1;
        }
        for site in std::mem::take(&mut self.exec_preemptions) {
            self.sites
                .get_mut(&site)
                .expect("preempted site is registered")
                .states_unlocked += delta;
        }
    }

    /// All sites as rows, hottest (most preempted, then most chosen)
    /// first.
    pub(crate) fn rows(&self) -> Vec<SiteRow>
    where
        K: Display,
    {
        let mut rows: Vec<SiteRow> = self
            .sites
            .iter()
            .map(|(site, c)| SiteRow {
                site: site.to_string(),
                choices: c.choices,
                executions: c.executions,
                preemptions: c.preemptions,
                faults: c.faults,
                states_unlocked: c.states_unlocked,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.preemptions
                .cmp(&a.preemptions)
                .then(b.faults.cmp(&a.faults))
                .then(b.choices.cmp(&a.choices))
                .then(a.site.cmp(&b.site))
        });
        rows
    }
}

// ---------------------------------------------------------------------
// JSONL reconstruction
// ---------------------------------------------------------------------

/// Extracts the raw (unquoted, unescaped) value of `"key":` from a flat
/// JSON object line, when the value is a string literal.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts the value of `"key":` when it is an unsigned integer.
fn field_u128(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn field_usize(line: &str, key: &str) -> Option<usize> {
    field_u128(line, key).map(|v| v as usize)
}

/// Extracts the value of `"key":` when it is a flat array of unsigned
/// integers (`"key":[1,2,3]`).
fn field_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let end = start + line[start..].find(']')?;
    let body = &line[start..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|v| v.trim().parse().ok()).collect()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    if line[start..].starts_with("true") {
        Some(true)
    } else if line[start..].starts_with("false") {
        Some(false)
    } else {
        None
    }
}

impl RunReport {
    /// Reconstructs a run from the JSONL event log written by
    /// [`JsonlSink`](crate::JsonlSink).
    ///
    /// Works on complete logs and on logs cut short by an abort or a
    /// killed process: totals then fall back to the per-execution events
    /// seen so far. Lines that are not recognized events are skipped.
    ///
    /// # Errors
    ///
    /// Returns an error when the text contains no `search-started` event
    /// — i.e. it is not a JSONL telemetry log at all.
    pub fn from_jsonl(text: &str) -> Result<RunReport, String> {
        let mut report = RunReport::default();
        let mut attribution: Attribution<String> = Attribution::new();
        let mut started = false;
        let mut finished = false;
        for line in text.lines() {
            let Some(event) = field_str(line, "event") else {
                continue;
            };
            match event.as_str() {
                "search-started" => {
                    started = true;
                    if let Some(s) = field_str(line, "strategy") {
                        report.strategy = s;
                    }
                }
                "execution-finished" => {
                    if let Some(i) = field_usize(line, "index") {
                        report.executions = report.executions.max(i);
                    }
                    let states = field_usize(line, "distinct_states").unwrap_or(0);
                    report.distinct_states = report.distinct_states.max(states);
                    if let Some(outcome) = field_str(line, "outcome") {
                        match outcome.as_str() {
                            // Non-bug outcomes: normal termination, the
                            // livelock guards, and infrastructure
                            // failures (divergence is quarantined, not
                            // reported as a program bug).
                            "terminated" | "step-limit-exceeded" | "replay-divergence" => {}
                            "watchdog-timeout" => report.watchdog_trips += 1,
                            _ => report.buggy_executions += 1,
                        }
                    }
                    attribution.execution_finished(states);
                }
                "trace-quarantined" => {
                    report.quarantined += 1;
                }
                "checkpoint-written" => {
                    report.checkpoints += 1;
                }
                "search-resumed" => {
                    report.resumed_from = field_usize(line, "executions");
                }
                "choice-point" => {
                    if let Some(site) = field_str(line, "site") {
                        attribution.choice(site);
                    }
                }
                "preemption-taken" => {
                    if let Some(site) = field_str(line, "site") {
                        attribution.preemption(site);
                    }
                }
                "fault-injected" => {
                    if let Some(site) = field_str(line, "site") {
                        attribution.fault(site);
                    }
                }
                "phase-time" => {
                    if let (Some(phase), Some(ns)) =
                        (field_str(line, "phase"), field_u128(line, "elapsed_ns"))
                    {
                        let elapsed = Duration::from_nanos(ns as u64);
                        match phase.as_str() {
                            "replay" => report.phases.replay += elapsed,
                            "selection" => report.phases.selection += elapsed,
                            "race-detection" => report.phases.race_detection += elapsed,
                            _ => {}
                        }
                    }
                }
                "bound-completed" => {
                    report.bounds.push(BoundRow {
                        bound: field_usize(line, "bound").unwrap_or(0),
                        executions: field_usize(line, "executions").unwrap_or(0),
                        cumulative_states: field_usize(line, "cumulative_states").unwrap_or(0),
                        bugs_found: field_usize(line, "bugs_found").unwrap_or(0),
                        wall_time: field_u128(line, "wall_time_ns")
                            .map(|ns| Duration::from_nanos(ns as u64)),
                    });
                }
                "cache-hit" => {
                    report.cache_hits += field_usize(line, "count").unwrap_or(0);
                }
                "cache-store" => {
                    report.cache_stores += field_usize(line, "count").unwrap_or(0);
                }
                "bound-certified" => {
                    report.cache_certified = true;
                }
                "metrics-snapshot" => {
                    if let (Some(ns), Some(executions)) = (
                        field_u128(line, "elapsed_ns"),
                        field_usize(line, "executions"),
                    ) {
                        report.throughput.push(ThroughputSample {
                            elapsed: Duration::from_nanos(ns as u64),
                            executions,
                        });
                    }
                    if let (Some(busy), Some(idle), Some(execs)) = (
                        field_u64_array(line, "worker_busy_ns"),
                        field_u64_array(line, "worker_idle_ns"),
                        field_u64_array(line, "worker_executions"),
                    ) {
                        // Keep-last: cumulative counters make the final
                        // snapshot the authoritative per-worker split.
                        report.worker_utilization = busy
                            .iter()
                            .zip(&idle)
                            .zip(&execs)
                            .enumerate()
                            .map(|(worker, ((&b, &i), &e))| WorkerUtilRow {
                                worker,
                                busy: Duration::from_nanos(b),
                                idle: Duration::from_nanos(i),
                                executions: e as usize,
                            })
                            .collect();
                    }
                }
                "search-aborted" => {
                    report.aborted = field_str(line, "reason");
                }
                "search-finished" => {
                    finished = true;
                    if let Some(v) = field_usize(line, "executions") {
                        report.executions = v;
                    }
                    if let Some(v) = field_usize(line, "distinct_states") {
                        report.distinct_states = v;
                    }
                    if let Some(v) = field_usize(line, "buggy_executions") {
                        report.buggy_executions = v;
                    }
                    if let Some(v) = field_usize(line, "bugs_reported") {
                        report.bugs_reported = v;
                    }
                    report.completed = field_bool(line, "completed").unwrap_or(false);
                    report.truncated = field_bool(line, "truncated").unwrap_or(false);
                    // The final report's cache totals are authoritative
                    // over the per-event sums (a log cut mid-run keeps
                    // the sums instead).
                    if let Some(v) = field_usize(line, "cache_hits") {
                        report.cache_hits = v;
                    }
                    if let Some(v) = field_usize(line, "cache_stores") {
                        report.cache_stores = v;
                    }
                    if let Some(v) = field_bool(line, "cache_heuristic") {
                        report.cache_heuristic = v;
                    }
                    if let Some(v) = field_bool(line, "cache_certified") {
                        report.cache_certified = report.cache_certified || v;
                    }
                    report.elapsed =
                        field_u128(line, "elapsed_ns").map(|ns| Duration::from_nanos(ns as u64));
                }
                _ => {}
            }
        }
        if !started {
            return Err("not a telemetry log: no search-started event".to_string());
        }
        if !finished && report.aborted.is_none() {
            report.aborted = Some("log ends mid-run".to_string());
        }
        report.sites = attribution.rows();
        Ok(report)
    }

    /// Merges the reports of consecutive segments of one
    /// checkpoint/resume chain into a single logical run.
    ///
    /// Pass segments oldest-first (`explore run --checkpoint` first,
    /// each `explore resume` after it). Cumulative quantities
    /// (executions, states, bug counts, per-bound rows) come from the
    /// latest segment that reports them — a resumed search's counters
    /// already include everything inherited through the checkpoint, so
    /// per-bound rows merge keep-last per bound. Per-segment quantities
    /// (phase times, site attribution, checkpoints, quarantined
    /// prefixes, watchdog trips, wall time) are summed.
    ///
    /// Returns `None` for an empty slice.
    pub fn stitch(segments: &[RunReport]) -> Option<RunReport> {
        let last = segments.last()?;
        let mut out = last.clone();

        let mut bounds: BTreeMap<usize, BoundRow> = BTreeMap::new();
        let mut sites: BTreeMap<String, SiteRow> = BTreeMap::new();
        let mut phases = PhaseTotals::default();
        let mut elapsed: Option<Duration> = None;
        let mut throughput: Vec<ThroughputSample> = Vec::new();
        let mut utilization: Vec<WorkerUtilRow> = Vec::new();
        let mut offset = Duration::ZERO;
        out.quarantined = 0;
        out.watchdog_trips = 0;
        out.checkpoints = 0;
        out.cache_hits = 0;
        out.cache_stores = 0;
        out.cache_heuristic = false;
        for seg in segments {
            for row in &seg.bounds {
                bounds.insert(row.bound, row.clone());
            }
            for site in &seg.sites {
                let entry = sites.entry(site.site.clone()).or_insert_with(|| SiteRow {
                    site: site.site.clone(),
                    choices: 0,
                    executions: 0,
                    preemptions: 0,
                    faults: 0,
                    states_unlocked: 0,
                });
                entry.choices += site.choices;
                entry.executions += site.executions;
                entry.preemptions += site.preemptions;
                entry.faults += site.faults;
                entry.states_unlocked += site.states_unlocked;
            }
            phases.replay += seg.phases.replay;
            phases.selection += seg.phases.selection;
            phases.race_detection += seg.phases.race_detection;
            if let Some(e) = seg.elapsed {
                elapsed = Some(elapsed.unwrap_or(Duration::ZERO) + e);
            }
            out.quarantined += seg.quarantined;
            out.watchdog_trips += seg.watchdog_trips;
            out.checkpoints += seg.checkpoints;
            out.cache_hits += seg.cache_hits;
            out.cache_stores += seg.cache_stores;
            out.cache_heuristic |= seg.cache_heuristic;
            // Snapshot timestamps are segment-local: offset each segment
            // by the chain's wall time so far, so the stitched series is
            // monotone in chain time.
            for sample in &seg.throughput {
                throughput.push(ThroughputSample {
                    elapsed: offset + sample.elapsed,
                    executions: sample.executions,
                });
            }
            if !seg.worker_utilization.is_empty() {
                utilization = seg.worker_utilization.clone();
            }
            let seg_span = seg
                .elapsed
                .or_else(|| seg.throughput.last().map(|s| s.elapsed))
                .unwrap_or(Duration::ZERO);
            offset += seg_span;
        }
        out.bounds = bounds.into_values().collect();
        let mut site_rows: Vec<SiteRow> = sites.into_values().collect();
        site_rows.sort_by(|a, b| {
            b.preemptions
                .cmp(&a.preemptions)
                .then(b.faults.cmp(&a.faults))
                .then(b.choices.cmp(&a.choices))
                .then(a.site.cmp(&b.site))
        });
        out.sites = site_rows;
        out.phases = phases;
        out.elapsed = elapsed;
        out.throughput = throughput;
        out.worker_utilization = utilization;
        // The stitched run starts where the *first* segment did.
        out.resumed_from = segments[0].resumed_from;
        Some(out)
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

struct Table {
    header: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

impl Table {
    fn new(header: Vec<&'static str>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    fn render(&self, out: &mut String, markdown: bool) {
        if markdown {
            out.push('|');
            for h in &self.header {
                out.push_str(&format!(" {h} |"));
            }
            out.push_str("\n|");
            for _ in &self.header {
                out.push_str("---|");
            }
            out.push('\n');
            for row in &self.rows {
                out.push('|');
                for cell in row {
                    out.push_str(&format!(" {cell} |"));
                }
                out.push('\n');
            }
            return;
        }
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{h:<w$}", w = widths[i]));
        }
        out.push('\n');
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&"-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // First column (labels) left-aligned, numbers right.
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}", w = widths[i]));
                } else {
                    out.push_str(&format!("{cell:>w$}", w = widths[i]));
                }
            }
            out.push('\n');
        }
    }
}

fn heading(out: &mut String, text: &str, markdown: bool) {
    if markdown {
        out.push_str(&format!("## {text}\n\n"));
    } else {
        out.push_str(&format!("{text}\n"));
        out.push_str(&format!("{}\n", "=".repeat(text.len())));
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

fn render(runs: &[RunReport], top: usize, markdown: bool) -> String {
    let mut out = String::new();
    if runs.len() > 1 {
        heading(&mut out, "Strategy comparison", markdown);
        let mut t = Table::new(vec![
            "strategy",
            "executions",
            "distinct states",
            "buggy execs",
            "completed",
        ]);
        for run in runs {
            t.row(vec![
                run.strategy.clone(),
                run.executions.to_string(),
                run.distinct_states.to_string(),
                run.buggy_executions.to_string(),
                run.completed.to_string(),
            ]);
        }
        t.render(&mut out, markdown);
        out.push('\n');
    }
    for run in runs {
        heading(&mut out, &format!("Run: {}", run.strategy), markdown);
        let mut summary = format!(
            "{} executions, {} distinct states, {} buggy",
            run.executions, run.distinct_states, run.buggy_executions
        );
        if run.completed {
            summary.push_str(", space exhausted");
        }
        if run.truncated {
            summary.push_str(", TRUNCATED");
        }
        if let Some(base) = run.resumed_from {
            summary.push_str(&format!(", resumed from {base} execs"));
        }
        if run.checkpoints > 0 {
            summary.push_str(&format!(", {} checkpoints", run.checkpoints));
        }
        if run.quarantined > 0 {
            summary.push_str(&format!(
                ", {} quarantined (space forfeited)",
                run.quarantined
            ));
        }
        if run.watchdog_trips > 0 {
            summary.push_str(&format!(", {} watchdog trips", run.watchdog_trips));
        }
        if run.cache_certified {
            summary.push_str(", CERTIFIED (answered from cache ledger)");
        }
        if run.cache_hits > 0 || run.cache_stores > 0 {
            let rate = 100.0 * run.cache_hits as f64 / (run.cache_hits + run.cache_stores) as f64;
            summary.push_str(&format!(
                ", cache: {} hits / {} stores ({rate:.1}% hit rate)",
                run.cache_hits, run.cache_stores
            ));
        }
        if run.cache_heuristic {
            summary.push_str(", HEURISTIC fingerprints (non-exhaustive)");
        }
        if let Some(elapsed) = run.elapsed {
            summary.push_str(&format!(", {}", secs(elapsed)));
        }
        if let Some(reason) = &run.aborted {
            summary.push_str(&format!(" (stopped: {reason})"));
        }
        out.push_str(&summary);
        out.push_str("\n\n");

        if !run.bounds.is_empty() {
            heading(&mut out, "Per-bound results", markdown);
            let mut t = Table::new(vec![
                "bound",
                "executions",
                "cumulative states",
                "bugs",
                "wall time",
            ]);
            for row in &run.bounds {
                t.row(vec![
                    row.bound.to_string(),
                    row.executions.to_string(),
                    row.cumulative_states.to_string(),
                    row.bugs_found.to_string(),
                    row.wall_time.map_or("-".to_string(), secs),
                ]);
            }
            t.render(&mut out, markdown);
            out.push('\n');
        }

        let hot: Vec<&SiteRow> = run
            .sites
            .iter()
            .filter(|s| s.preemptions > 0 || s.faults > 0)
            .take(top)
            .collect();
        if !hot.is_empty() {
            heading(
                &mut out,
                &format!("Hottest preemption sites (top {})", hot.len()),
                markdown,
            );
            // The faults column only appears when a fault-bound run
            // actually injected faults, so fault-free reports render
            // exactly as they did before fault bounding existed.
            let faulted = hot.iter().any(|s| s.faults > 0);
            let mut headers = vec!["site", "preemptions"];
            if faulted {
                headers.push("faults");
            }
            headers.extend(["choice points", "executions", "states unlocked"]);
            let mut t = Table::new(headers);
            for s in hot {
                let mut row = vec![s.site.clone(), s.preemptions.to_string()];
                if faulted {
                    row.push(s.faults.to_string());
                }
                row.extend([
                    s.choices.to_string(),
                    s.executions.to_string(),
                    s.states_unlocked.to_string(),
                ]);
                t.row(row);
            }
            t.render(&mut out, markdown);
            out.push('\n');
        }

        if !run.throughput.is_empty() {
            heading(&mut out, "Throughput over time", markdown);
            let mut t = Table::new(vec!["elapsed", "executions", "rate"]);
            // Sample evenly down to ~20 rows; the full series stays in
            // the RunReport for anything that wants to plot it.
            let stride = run.throughput.len().div_ceil(20).max(1);
            let mut prev: Option<ThroughputSample> = None;
            for (i, sample) in run.throughput.iter().enumerate() {
                if i % stride != 0 && i + 1 != run.throughput.len() {
                    continue;
                }
                let rate = match prev {
                    Some(p) if sample.elapsed > p.elapsed => {
                        let dt = (sample.elapsed - p.elapsed).as_secs_f64();
                        let dx = sample.executions.saturating_sub(p.executions);
                        format!("{:.0}/s", dx as f64 / dt)
                    }
                    _ => "-".to_string(),
                };
                t.row(vec![
                    secs(sample.elapsed),
                    sample.executions.to_string(),
                    rate,
                ]);
                prev = Some(*sample);
            }
            t.render(&mut out, markdown);
            out.push('\n');
        }

        if !run.worker_utilization.is_empty() {
            heading(&mut out, "Worker utilization", markdown);
            let mut t = Table::new(vec!["worker", "busy", "idle", "utilization", "executions"]);
            for w in &run.worker_utilization {
                t.row(vec![
                    w.worker.to_string(),
                    secs(w.busy),
                    secs(w.idle),
                    w.utilization()
                        .map_or("-".to_string(), |u| format!("{:.1}%", 100.0 * u)),
                    w.executions.to_string(),
                ]);
            }
            t.render(&mut out, markdown);
            out.push('\n');
        }

        if run.phases.sum() > Duration::ZERO {
            heading(&mut out, "Phase timing", markdown);
            let mut t = Table::new(vec!["phase", "time", "share"]);
            let reference = run.elapsed.unwrap_or_else(|| run.phases.sum());
            let share = |d: Duration| {
                if reference > Duration::ZERO {
                    format!("{:.1}%", 100.0 * d.as_secs_f64() / reference.as_secs_f64())
                } else {
                    "-".to_string()
                }
            };
            t.row(vec![
                "replay".to_string(),
                secs(run.phases.replay),
                share(run.phases.replay),
            ]);
            t.row(vec![
                "selection".to_string(),
                secs(run.phases.selection),
                share(run.phases.selection),
            ]);
            t.row(vec![
                "race detection".to_string(),
                secs(run.phases.race_detection),
                share(run.phases.race_detection),
            ]);
            if let Some(elapsed) = run.elapsed {
                let other = elapsed.saturating_sub(run.phases.sum());
                t.row(vec!["other".to_string(), secs(other), share(other)]);
            }
            t.render(&mut out, markdown);
            out.push('\n');
        }
    }
    out
}

/// Renders the reports as plain-text tables.
pub fn render_text(runs: &[RunReport], top: usize) -> String {
    render(runs, top, false)
}

/// Renders the reports as GitHub-flavored Markdown.
pub fn render_markdown(runs: &[RunReport], top: usize) -> String {
    render(runs, top, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = r#"{"event":"search-started","strategy":"icb"}
{"event":"bound-started","bound":0,"work_items":1}
{"event":"execution-started","index":1}
{"event":"choice-point","site":"acquire#0","bound":0,"kind":"continue"}
{"event":"choice-point","site":"release#0","bound":0,"kind":"switch"}
{"event":"execution-finished","index":1,"steps":2,"blocking_steps":1,"preemptions":0,"context_switches":1,"outcome":"terminated","distinct_states":2}
{"event":"bound-completed","bound":0,"executions":1,"cumulative_states":2,"bugs_found":0,"wall_time_ns":1000}
{"event":"bound-started","bound":1,"work_items":2}
{"event":"execution-started","index":2}
{"event":"choice-point","site":"acquire#0","bound":1,"kind":"continue"}
{"event":"choice-point","site":"release#0","bound":1,"kind":"preemption"}
{"event":"preemption-taken","site":"acquire#0"}
{"event":"execution-finished","index":2,"steps":2,"blocking_steps":1,"preemptions":1,"context_switches":1,"outcome":"assertion-failure","detail":"boom","distinct_states":5}
{"event":"phase-time","phase":"replay","elapsed_ns":600}
{"event":"phase-time","phase":"selection","elapsed_ns":300}
{"event":"phase-time","phase":"race-detection","elapsed_ns":100}
{"event":"bound-completed","bound":1,"executions":1,"cumulative_states":5,"bugs_found":1,"wall_time_ns":2000}
{"event":"search-finished","strategy":"icb","executions":2,"distinct_states":5,"buggy_executions":1,"bugs_reported":1,"completed":true,"completed_bound":1,"truncated":false,"elapsed_ns":5000}
"#;

    #[test]
    fn reconstructs_totals_bounds_and_sites() {
        let r = RunReport::from_jsonl(LOG).unwrap();
        assert_eq!(r.strategy, "icb");
        assert_eq!(r.executions, 2);
        assert_eq!(r.distinct_states, 5);
        assert_eq!(r.buggy_executions, 1);
        assert!(r.completed);
        assert_eq!(r.elapsed, Some(Duration::from_nanos(5000)));
        assert_eq!(r.bounds.len(), 2);
        assert_eq!(r.bounds[1].bound, 1);
        assert_eq!(r.bounds[1].cumulative_states, 5);
        assert_eq!(r.bounds[1].bugs_found, 1);

        // acquire#0 was preempted once; the second execution unlocked
        // 5 - 2 = 3 states, all credited to it.
        let hot = &r.sites[0];
        assert_eq!(hot.site, "acquire#0");
        assert_eq!(hot.preemptions, 1);
        assert_eq!(hot.choices, 2);
        assert_eq!(hot.executions, 2);
        assert_eq!(hot.states_unlocked, 3);

        assert_eq!(r.phases.replay, Duration::from_nanos(600));
        assert_eq!(r.phases.selection, Duration::from_nanos(300));
        assert_eq!(r.phases.race_detection, Duration::from_nanos(100));
    }

    #[test]
    fn truncated_log_still_reconstructs() {
        // Cut the log right after the second execution-started: the run
        // was killed mid-execution.
        let cut = LOG.lines().take(9).collect::<Vec<_>>().join("\n");
        let r = RunReport::from_jsonl(&cut).unwrap();
        assert_eq!(r.executions, 1);
        assert_eq!(r.distinct_states, 2);
        assert_eq!(r.bounds.len(), 1);
        assert!(r.aborted.is_some());
        assert!(!r.completed);
    }

    #[test]
    fn rejects_non_telemetry_text() {
        assert!(RunReport::from_jsonl("hello\nworld\n").is_err());
        assert!(RunReport::from_jsonl("").is_err());
    }

    #[test]
    fn text_and_markdown_render_the_same_numbers() {
        let r = RunReport::from_jsonl(LOG).unwrap();
        let text = render_text(std::slice::from_ref(&r), 10);
        let md = render_markdown(std::slice::from_ref(&r), 10);
        for needle in ["Per-bound results", "acquire#0", "Phase timing"] {
            assert!(text.contains(needle), "text missing {needle}:\n{text}");
            assert!(md.contains(needle), "markdown missing {needle}:\n{md}");
        }
        // Markdown tables are pipe-delimited.
        assert!(md.contains("| 1 | 1 | 5 | 1 |"), "{md}");
        // Two runs get a comparison table; one run does not.
        assert!(!text.contains("Strategy comparison"));
        let both = render_text(&[r.clone(), r], 10);
        assert!(both.contains("Strategy comparison"), "{both}");
    }

    const SEGMENT1: &str = r#"{"event":"search-started","strategy":"icb"}
{"event":"bound-started","bound":0,"work_items":1}
{"event":"execution-finished","index":1,"steps":2,"blocking_steps":1,"preemptions":0,"context_switches":0,"outcome":"terminated","distinct_states":2}
{"event":"bound-completed","bound":0,"executions":1,"cumulative_states":2,"bugs_found":0,"wall_time_ns":1000}
{"event":"bound-started","bound":1,"work_items":2}
{"event":"execution-finished","index":2,"steps":2,"blocking_steps":1,"preemptions":1,"context_switches":1,"outcome":"replay-divergence","detail":"diverged","distinct_states":3}
{"event":"trace-quarantined","step":1,"expected":1,"actual":[0],"schedule":[0,1]}
{"event":"execution-finished","index":3,"steps":2,"blocking_steps":1,"preemptions":1,"context_switches":1,"outcome":"watchdog-timeout","distinct_states":4}
{"event":"checkpoint-written","executions":3}
"#;

    const SEGMENT2: &str = r#"{"event":"search-started","strategy":"icb"}
{"event":"search-resumed","executions":3,"distinct_states":4,"bound":1,"bound_executions":2}
{"event":"execution-finished","index":4,"steps":2,"blocking_steps":1,"preemptions":1,"context_switches":1,"outcome":"assertion-failure","detail":"boom","distinct_states":6}
{"event":"bound-completed","bound":1,"executions":3,"cumulative_states":6,"bugs_found":1,"wall_time_ns":2000}
{"event":"search-finished","strategy":"icb","executions":4,"distinct_states":6,"buggy_executions":1,"bugs_reported":1,"completed":true,"completed_bound":1,"truncated":false,"elapsed_ns":4000}
"#;

    #[test]
    fn infrastructure_outcomes_are_not_program_bugs() {
        let r = RunReport::from_jsonl(SEGMENT1).unwrap();
        assert_eq!(r.buggy_executions, 0);
        assert_eq!(r.quarantined, 1);
        assert_eq!(r.watchdog_trips, 1);
        assert_eq!(r.checkpoints, 1);
        assert!(r.aborted.is_some(), "killed segment reads as aborted");
    }

    #[test]
    fn stitches_segments_into_one_per_bound_table() {
        let a = RunReport::from_jsonl(SEGMENT1).unwrap();
        let b = RunReport::from_jsonl(SEGMENT2).unwrap();
        assert_eq!(b.resumed_from, Some(3));

        let stitched = RunReport::stitch(&[a, b]).unwrap();
        // Cumulative totals come from the final segment.
        assert_eq!(stitched.executions, 4);
        assert_eq!(stitched.distinct_states, 6);
        assert_eq!(stitched.buggy_executions, 1);
        assert!(stitched.completed);
        // Per-bound rows merge keep-last: bound 0 from segment 1,
        // bound 1 from segment 2 (whose counters are cumulative).
        assert_eq!(stitched.bounds.len(), 2);
        assert_eq!(stitched.bounds[0].bound, 0);
        assert_eq!(stitched.bounds[0].executions, 1);
        assert_eq!(stitched.bounds[1].bound, 1);
        assert_eq!(stitched.bounds[1].executions, 3);
        assert_eq!(stitched.bounds[1].cumulative_states, 6);
        // Per-segment counters are summed.
        assert_eq!(stitched.quarantined, 1);
        assert_eq!(stitched.watchdog_trips, 1);
        assert_eq!(stitched.checkpoints, 1);
        // The chain started fresh.
        assert_eq!(stitched.resumed_from, None);

        let text = render_text(std::slice::from_ref(&stitched), 10);
        assert!(text.contains("1 quarantined"), "{text}");
        assert!(text.contains("1 watchdog trips"), "{text}");
        assert!(text.contains("1 checkpoints"), "{text}");
    }

    #[test]
    fn stitch_of_nothing_is_none() {
        assert!(RunReport::stitch(&[]).is_none());
    }

    const CACHED_LOG: &str = r#"{"event":"search-started","strategy":"icb"}
{"event":"cache-store","count":3}
{"event":"cache-hit","count":2}
{"event":"cache-hit","count":1}
{"event":"search-finished","strategy":"icb","executions":4,"distinct_states":6,"buggy_executions":0,"bugs_reported":0,"completed":true,"completed_bound":2,"truncated":false,"cache_hits":3,"cache_stores":3,"cache_heuristic":false,"cache_certified":false,"elapsed_ns":900}
"#;

    #[test]
    fn cache_events_reconstruct_and_render() {
        let r = RunReport::from_jsonl(CACHED_LOG).unwrap();
        assert_eq!(r.cache_hits, 3);
        assert_eq!(r.cache_stores, 3);
        assert!(!r.cache_heuristic);
        assert!(!r.cache_certified);
        let text = render_text(std::slice::from_ref(&r), 10);
        assert!(
            text.contains("cache: 3 hits / 3 stores (50.0% hit rate)"),
            "{text}"
        );

        // A log cut before search-finished keeps the per-event sums.
        let cut = CACHED_LOG.lines().take(4).collect::<Vec<_>>().join("\n");
        let r = RunReport::from_jsonl(&cut).unwrap();
        assert_eq!((r.cache_hits, r.cache_stores), (3, 3));

        // A certified warm run renders the ledger answer.
        let certified = r#"{"event":"search-started","strategy":"icb"}
{"event":"bound-certified","bound":2}
{"event":"search-finished","strategy":"icb","executions":0,"distinct_states":6,"buggy_executions":0,"bugs_reported":0,"completed":false,"completed_bound":2,"truncated":false,"cache_hits":0,"cache_stores":0,"cache_heuristic":false,"cache_certified":true,"elapsed_ns":10}
"#;
        let r = RunReport::from_jsonl(certified).unwrap();
        assert!(r.cache_certified);
        let text = render_text(std::slice::from_ref(&r), 10);
        assert!(
            text.contains("CERTIFIED (answered from cache ledger)"),
            "{text}"
        );

        // Stitching sums the per-segment cache counters.
        let a = RunReport::from_jsonl(CACHED_LOG).unwrap();
        let b = RunReport::from_jsonl(CACHED_LOG).unwrap();
        let stitched = RunReport::stitch(&[a, b]).unwrap();
        assert_eq!((stitched.cache_hits, stitched.cache_stores), (6, 6));
    }

    const METERED_SEGMENT1: &str = r#"{"event":"search-started","strategy":"icb"}
{"event":"execution-finished","index":10,"steps":2,"blocking_steps":0,"preemptions":0,"context_switches":0,"outcome":"terminated","distinct_states":5}
{"event":"metrics-snapshot","elapsed_ns":1000000000,"executions":10,"distinct_states":5,"bound":1,"bound_executions":10,"frontier_len":3,"pump_channel_depth":0,"eta_seconds":null,"worker_busy_ns":[600000000,500000000],"worker_idle_ns":[100000000,200000000],"worker_executions":[6,4]}
{"event":"checkpoint-written","executions":10}
"#;

    const METERED_SEGMENT2: &str = r#"{"event":"search-started","strategy":"icb"}
{"event":"search-resumed","executions":10,"distinct_states":5,"bound":1,"bound_executions":10}
{"event":"metrics-snapshot","elapsed_ns":500000000,"executions":18,"distinct_states":7,"bound":1,"bound_executions":18,"frontier_len":1,"pump_channel_depth":0,"eta_seconds":0.125,"worker_busy_ns":[900000000,800000000],"worker_idle_ns":[150000000,250000000],"worker_executions":[10,8]}
{"event":"search-finished","strategy":"icb","executions":20,"distinct_states":8,"buggy_executions":0,"bugs_reported":0,"completed":true,"completed_bound":1,"truncated":false,"elapsed_ns":700000000}
"#;

    #[test]
    fn metrics_snapshots_reconstruct_throughput_and_utilization() {
        let r = RunReport::from_jsonl(METERED_SEGMENT1).unwrap();
        assert_eq!(
            r.throughput,
            vec![ThroughputSample {
                elapsed: Duration::from_secs(1),
                executions: 10,
            }]
        );
        assert_eq!(r.worker_utilization.len(), 2);
        assert_eq!(r.worker_utilization[0].worker, 0);
        assert_eq!(r.worker_utilization[0].busy, Duration::from_millis(600));
        assert_eq!(r.worker_utilization[0].executions, 6);
        let util = r.worker_utilization[1].utilization().unwrap();
        assert!((util - 500.0 / 700.0).abs() < 1e-9, "{util}");

        let text = render_text(std::slice::from_ref(&r), 10);
        assert!(text.contains("Throughput over time"), "{text}");
        assert!(text.contains("Worker utilization"), "{text}");
    }

    #[test]
    fn stitch_offsets_snapshot_series_to_chain_time() {
        let a = RunReport::from_jsonl(METERED_SEGMENT1).unwrap();
        let b = RunReport::from_jsonl(METERED_SEGMENT2).unwrap();
        let stitched = RunReport::stitch(&[a, b]).unwrap();

        // Segment 1 has no search-finished, so its span is its last
        // snapshot (1s); segment 2's sample shifts from 0.5s to 1.5s.
        assert_eq!(
            stitched.throughput,
            vec![
                ThroughputSample {
                    elapsed: Duration::from_secs(1),
                    executions: 10,
                },
                ThroughputSample {
                    elapsed: Duration::from_millis(1500),
                    executions: 18,
                },
            ]
        );
        // The series is monotone in both axes across the seam.
        for pair in stitched.throughput.windows(2) {
            assert!(pair[0].elapsed < pair[1].elapsed);
            assert!(pair[0].executions <= pair[1].executions);
        }
        // Worker utilization keeps the final (cumulative) snapshot.
        assert_eq!(
            stitched.worker_utilization[0].busy,
            Duration::from_millis(900)
        );
        assert_eq!(stitched.worker_utilization[1].executions, 8);
    }

    #[test]
    fn parses_u64_arrays() {
        assert_eq!(
            field_u64_array(r#"{"a":[1,2,3],"b":[]}"#, "a"),
            Some(vec![1, 2, 3])
        );
        assert_eq!(field_u64_array(r#"{"a":[1],"b":[]}"#, "b"), Some(vec![]));
        assert_eq!(field_u64_array(r#"{"a":7}"#, "a"), None);
    }

    #[test]
    fn unescapes_string_fields() {
        assert_eq!(
            field_str(r#"{"event":"x","msg":"a\"b\\c\nd"}"#, "msg").as_deref(),
            Some("a\"b\\c\nd")
        );
        assert_eq!(field_str(r#"{"msg":"A"}"#, "msg").as_deref(), Some("A"));
        assert_eq!(field_str(r#"{"other":1}"#, "msg"), None);
    }
}
