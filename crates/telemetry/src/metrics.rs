//! In-memory counters and histograms over the search event stream.

use std::time::{Duration, Instant};

use icb_core::search::{BoundStats, SearchReport};
use icb_core::telemetry::AbortReason;
use icb_core::{ExecStats, ExecutionOutcome, SearchObserver};

/// A power-of-two-bucketed histogram of `usize` samples.
///
/// Bucket `i` counts samples whose value has bit length `i` (bucket 0
/// holds the value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3
/// holds 4–7, …). Exact minimum, maximum, sum and count are kept
/// alongside, so means are not subject to bucketing error.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: Option<usize>,
    max: usize,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        let bucket = (usize::BITS - value.leading_zeros()) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u64;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<usize> {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> usize {
        self.max
    }

    /// The bucket counts: entry `i` counts samples in
    /// `[2^(i-1), 2^i - 1]` (entry 0 counts zeros).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// Aggregates the event stream into the numbers the paper's figures are
/// drawn from.
///
/// Attach one recorder per search:
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig, SearchStrategy};
/// use icb_telemetry::MetricsRecorder;
/// # use icb_core::{ControlledProgram, Scheduler, StateSink, ExecutionResult,
/// #                ExecutionOutcome, Trace};
/// # struct Nop;
/// # impl ControlledProgram for Nop {
/// #     fn execute(&self, s: &mut dyn Scheduler, _k: &mut dyn StateSink)
/// #         -> ExecutionResult {
/// #         ExecutionResult::from_trace(ExecutionOutcome::Terminated, Trace::new())
/// #     }
/// # }
/// let mut metrics = MetricsRecorder::new();
/// let report = IcbSearch::new(SearchConfig::default())
///     .search_observed(&Nop, &mut metrics);
/// assert_eq!(metrics.executions(), report.executions);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    strategy: String,
    started_at: Option<Instant>,
    finished_at: Option<Instant>,
    executions_started: usize,
    executions: usize,
    buggy_executions: usize,
    bug_reports: usize,
    races_detected: usize,
    work_items_deferred: usize,
    queue_high_water: usize,
    distinct_states: usize,
    steps: Histogram,
    preemption_counts: Vec<usize>,
    coverage_curve: Vec<(usize, usize)>,
    bound_rows: Vec<(BoundStats, Duration)>,
    cache_hits: usize,
    cache_stores: usize,
    certified_bound: Option<Option<usize>>,
    abort: Option<AbortReason>,
    finished: bool,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// The strategy label announced by `search_started` (empty before).
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Executions finished so far.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// `execution_started` events seen (equals [`executions`] between
    /// executions; may be one ahead mid-execution).
    ///
    /// [`executions`]: MetricsRecorder::executions
    pub fn executions_started(&self) -> usize {
        self.executions_started
    }

    /// Executions that ended in a bug.
    pub fn buggy_executions(&self) -> usize {
        self.buggy_executions
    }

    /// `bug_found` events seen (bounded by `max_bug_reports`).
    pub fn bug_reports(&self) -> usize {
        self.bug_reports
    }

    /// Data races flagged by the happens-before detector.
    pub fn races_detected(&self) -> usize {
        self.races_detected
    }

    /// Work items deferred to later ICB bounds.
    pub fn work_items_deferred(&self) -> usize {
        self.work_items_deferred
    }

    /// Largest deferred-queue depth observed.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Cumulative distinct states after the latest execution.
    pub fn distinct_states(&self) -> usize {
        self.distinct_states
    }

    /// Distribution of steps per execution.
    pub fn steps(&self) -> &Histogram {
        &self.steps
    }

    /// Preemption distribution: entry `c` counts executions with exactly
    /// `c` preemptions.
    pub fn preemption_distribution(&self) -> &[usize] {
        &self.preemption_counts
    }

    /// The coverage curve `(execution index, cumulative distinct states)`
    /// — the data behind Figures 2, 5 and 6.
    pub fn coverage_curve(&self) -> &[(usize, usize)] {
        &self.coverage_curve
    }

    /// Completed ICB bounds with their wall time — the data behind
    /// Figures 1 and 4, plus per-bound timing the report does not carry.
    pub fn bound_rows(&self) -> &[(BoundStats, Duration)] {
        &self.bound_rows
    }

    /// Work items pruned by the fingerprint cache.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// New subtree entries the fingerprint cache recorded.
    pub fn cache_stores(&self) -> usize {
        self.cache_stores
    }

    /// `Some(bound)` when the certification ledger answered the search
    /// without running it (inner `None` = certified exhaustively).
    pub fn certified_bound(&self) -> Option<Option<usize>> {
        self.certified_bound
    }

    /// Why the search aborted, if it did not exhaust its space.
    pub fn abort(&self) -> Option<AbortReason> {
        self.abort
    }

    /// Wall time from `search_started` to `search_finished` (to now, for
    /// a still-running search; zero before the search starts).
    pub fn elapsed(&self) -> Duration {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => f.duration_since(s),
            (Some(s), None) => s.elapsed(),
            _ => Duration::ZERO,
        }
    }

    /// Observed throughput in executions per second (`None` until time
    /// has measurably passed).
    pub fn executions_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed().as_secs_f64();
        (secs > 0.0).then(|| self.executions as f64 / secs)
    }

    /// Whether `search_finished` has been observed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

impl SearchObserver for MetricsRecorder {
    fn search_started(&mut self, strategy: &str) {
        self.strategy = strategy.to_string();
        self.started_at = Some(Instant::now());
    }

    fn execution_started(&mut self, _index: usize) {
        // A recorder may be attached mid-search (e.g. after a warmup), so
        // time from the first event seen when `search_started` was missed.
        if self.started_at.is_none() {
            self.started_at = Some(Instant::now());
        }
        self.executions_started += 1;
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        self.executions = index;
        self.distinct_states = distinct_states;
        self.steps.record(stats.steps);
        if self.preemption_counts.len() <= stats.preemptions {
            self.preemption_counts.resize(stats.preemptions + 1, 0);
        }
        self.preemption_counts[stats.preemptions] += 1;
        if outcome.is_bug() {
            self.buggy_executions += 1;
        }
        self.coverage_curve.push((index, distinct_states));
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        self.bound_rows.push((*stats, wall_time));
    }

    fn bug_found(&mut self, _bug: &icb_core::search::BugReport) {
        self.bug_reports += 1;
    }

    fn work_item_deferred(&mut self, _next_bound: usize) {
        self.work_items_deferred += 1;
    }

    fn work_queue_depth(&mut self, depth: usize) {
        self.queue_high_water = self.queue_high_water.max(depth);
    }

    fn race_detected(&mut self, _description: &str) {
        self.races_detected += 1;
    }

    fn cache_hit(&mut self, count: usize) {
        self.cache_hits += count;
    }

    fn cache_store(&mut self, count: usize) {
        self.cache_stores += count;
    }

    fn bound_certified(&mut self, bound: Option<usize>) {
        self.certified_bound = Some(bound);
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        self.abort = Some(reason);
    }

    fn search_finished(&mut self, report: &SearchReport) {
        self.finished_at = Some(Instant::now());
        self.finished = true;
        self.distinct_states = report.distinct_states;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), 8);
        assert_eq!(h.buckets(), &[1, 1, 2, 2, 1]);
        let mean = h.mean().unwrap();
        assert!((mean - 25.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_tracks_executions_and_coverage() {
        let mut m = MetricsRecorder::new();
        m.search_started("icb");
        m.execution_started(1);
        m.execution_finished(
            1,
            &ExecStats {
                steps: 5,
                blocking_steps: 0,
                preemptions: 2,
                context_switches: 2,
                faults: 0,
            },
            &ExecutionOutcome::Terminated,
            4,
        );
        assert_eq!(m.executions(), 1);
        assert_eq!(m.distinct_states(), 4);
        assert_eq!(m.coverage_curve(), &[(1, 4)]);
        assert_eq!(m.preemption_distribution(), &[0, 0, 1]);
        assert!(!m.is_finished());
    }

    #[test]
    fn recorder_tracks_queue_high_water() {
        let mut m = MetricsRecorder::new();
        m.work_queue_depth(3);
        m.work_queue_depth(9);
        m.work_queue_depth(4);
        assert_eq!(m.queue_high_water(), 9);
    }
}
