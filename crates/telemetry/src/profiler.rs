//! Live exploration profiler: per-site preemption attribution, per-bound
//! coverage frontier, and wall-clock phase timing.
//!
//! Attach an [`ExplorationProfiler`] to a search (directly or through a
//! [`MultiObserver`](crate::MultiObserver)) and call
//! [`run_report`](ExplorationProfiler::run_report) afterwards: the result
//! is the same [`RunReport`] that `explore report` reconstructs from a
//! JSONL log, rendered by [`render_text`](crate::render_text) /
//! [`render_markdown`](crate::render_markdown).
//!
//! The profiler opts into the attributed per-step events
//! (`wants_choice_points`) and phase timers (`wants_phase_timing`); hosts
//! skip both entirely for observers that do not, so a search without a
//! profiler pays nothing for this machinery.

use std::time::{Duration, Instant};

use icb_core::search::{BoundStats, BugReport, SearchReport};
use icb_core::telemetry::AbortReason;
use icb_core::{
    ChoiceKind, ExecStats, ExecutionOutcome, MetricsSnapshot, Phase, SearchObserver, SiteId,
};

use crate::report::{
    Attribution, BoundRow, PhaseTotals, RunReport, ThroughputSample, WorkerUtilRow,
};

/// Aggregates attributed search events into a [`RunReport`].
#[derive(Debug)]
pub struct ExplorationProfiler {
    strategy: String,
    started: Option<Instant>,
    elapsed: Option<Duration>,
    attribution: Attribution<SiteId>,
    bounds: Vec<BoundRow>,
    phases: PhaseTotals,
    executions: usize,
    distinct_states: usize,
    buggy_executions: usize,
    bugs_reported: usize,
    completed: bool,
    truncated: bool,
    aborted: Option<String>,
    quarantined: usize,
    watchdog_trips: usize,
    checkpoints: usize,
    resumed_from: Option<usize>,
    cache_hits: usize,
    cache_stores: usize,
    cache_heuristic: bool,
    cache_certified: bool,
    throughput: Vec<ThroughputSample>,
    worker_utilization: Vec<WorkerUtilRow>,
}

impl Default for ExplorationProfiler {
    fn default() -> Self {
        ExplorationProfiler::new()
    }
}

impl ExplorationProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        ExplorationProfiler {
            strategy: String::new(),
            started: None,
            elapsed: None,
            attribution: Attribution::new(),
            bounds: Vec::new(),
            phases: PhaseTotals::default(),
            executions: 0,
            distinct_states: 0,
            buggy_executions: 0,
            bugs_reported: 0,
            completed: false,
            truncated: false,
            aborted: None,
            quarantined: 0,
            watchdog_trips: 0,
            checkpoints: 0,
            resumed_from: None,
            cache_hits: 0,
            cache_stores: 0,
            cache_heuristic: false,
            cache_certified: false,
            throughput: Vec::new(),
            worker_utilization: Vec::new(),
        }
    }

    /// The wall-clock phase totals accumulated so far.
    pub fn phase_totals(&self) -> PhaseTotals {
        self.phases
    }

    /// Total search wall time, once the search finished.
    pub fn elapsed(&self) -> Option<Duration> {
        self.elapsed
    }

    /// The accumulated run report.
    pub fn run_report(&self) -> RunReport {
        RunReport {
            strategy: self.strategy.clone(),
            executions: self.executions,
            distinct_states: self.distinct_states,
            buggy_executions: self.buggy_executions,
            bugs_reported: self.bugs_reported,
            completed: self.completed,
            truncated: self.truncated,
            aborted: self.aborted.clone(),
            elapsed: self.elapsed,
            bounds: self.bounds.clone(),
            sites: self.attribution.rows(),
            phases: self.phases,
            quarantined: self.quarantined,
            watchdog_trips: self.watchdog_trips,
            checkpoints: self.checkpoints,
            resumed_from: self.resumed_from,
            cache_hits: self.cache_hits,
            cache_stores: self.cache_stores,
            cache_heuristic: self.cache_heuristic,
            cache_certified: self.cache_certified,
            throughput: self.throughput.clone(),
            worker_utilization: self.worker_utilization.clone(),
        }
    }
}

impl SearchObserver for ExplorationProfiler {
    fn search_started(&mut self, strategy: &str) {
        self.strategy = strategy.to_string();
        self.started = Some(Instant::now());
    }

    fn execution_finished(
        &mut self,
        index: usize,
        _stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        self.executions = self.executions.max(index);
        self.distinct_states = self.distinct_states.max(distinct_states);
        match outcome {
            ExecutionOutcome::Terminated
            | ExecutionOutcome::StepLimitExceeded
            | ExecutionOutcome::ReplayDivergence { .. } => {}
            ExecutionOutcome::WatchdogTimeout => self.watchdog_trips += 1,
            _ => self.buggy_executions += 1,
        }
        self.attribution.execution_finished(distinct_states);
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        self.bounds.push(BoundRow {
            bound: stats.bound,
            executions: stats.executions,
            cumulative_states: stats.cumulative_states,
            bugs_found: stats.bugs_found,
            wall_time: Some(wall_time),
        });
    }

    fn bug_found(&mut self, _bug: &BugReport) {
        self.bugs_reported += 1;
    }

    fn wants_choice_points(&self) -> bool {
        true
    }

    fn wants_phase_timing(&self) -> bool {
        true
    }

    fn choice_point(&mut self, site: SiteId, _bound: usize, _kind: ChoiceKind) {
        self.attribution.choice(site);
    }

    fn preemption_taken(&mut self, site: SiteId) {
        self.attribution.preemption(site);
    }

    fn fault_injected(&mut self, site: SiteId, _step: usize) {
        self.attribution.fault(site);
    }

    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
        self.phases.add(phase, elapsed);
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        self.aborted = Some(reason.to_string());
    }

    fn search_resumed(&mut self, info: &icb_core::telemetry::ResumeInfo) {
        self.resumed_from = Some(info.executions);
    }

    fn checkpoint_written(&mut self, _executions: usize) {
        self.checkpoints += 1;
    }

    fn trace_quarantined(&mut self, _quarantined: &icb_core::search::QuarantinedTrace) {
        self.quarantined += 1;
    }

    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        self.throughput.push(ThroughputSample {
            elapsed: snapshot.elapsed,
            executions: snapshot.executions as usize,
        });
        self.worker_utilization = snapshot
            .workers
            .iter()
            .enumerate()
            .map(|(worker, w)| WorkerUtilRow {
                worker,
                busy: Duration::from_nanos(w.busy_ns),
                idle: Duration::from_nanos(w.idle_ns),
                executions: w.executions as usize,
            })
            .collect();
    }

    fn cache_hit(&mut self, count: usize) {
        self.cache_hits += count;
    }

    fn cache_store(&mut self, count: usize) {
        self.cache_stores += count;
    }

    fn bound_certified(&mut self, _bound: Option<usize>) {
        self.cache_certified = true;
    }

    fn search_finished(&mut self, report: &SearchReport) {
        self.elapsed = self.started.map(|t| t.elapsed());
        self.executions = report.executions;
        self.distinct_states = report.distinct_states;
        self.buggy_executions = report.buggy_executions;
        self.bugs_reported = report.bugs.len();
        self.completed = report.completed;
        self.truncated = report.truncated;
        self.quarantined = report.quarantined_total;
        self.watchdog_trips = report.watchdog_trips;
        if let Some(cache) = &report.cache {
            self.cache_hits = cache.hits;
            self.cache_stores = cache.stores;
            self.cache_heuristic = cache.heuristic;
            self.cache_certified |= cache.certified;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::search::{Search, SearchConfig};
    use icb_core::{
        ControlledProgram, ExecutionResult, SchedulePoint, Scheduler, StateSink, Tid, Trace,
        TraceEntry,
    };

    /// Two threads, two lock-protected steps each — every step carries a
    /// distinct op site so attribution is observable.
    struct TwoSites;

    impl ControlledProgram for TwoSites {
        fn execute(
            &self,
            scheduler: &mut dyn Scheduler,
            sink: &mut dyn StateSink,
        ) -> ExecutionResult {
            let mut trace = Trace::new();
            let mut current: Option<Tid> = None;
            let mut left = [2usize, 2usize];
            let mut fp = 0u64;
            loop {
                let enabled: Vec<Tid> = (0..2).filter(|&i| left[i] > 0).map(Tid).collect();
                if enabled.is_empty() {
                    break;
                }
                let current_enabled = current.is_some_and(|c| left[c.index()] > 0);
                let chosen = scheduler.pick(SchedulePoint {
                    step_index: trace.len(),
                    current,
                    current_enabled,
                    enabled: &enabled,
                });
                let site = SiteId::at(chosen.index() as u32, "step", left[chosen.index()] as u32);
                trace.push(
                    TraceEntry::new(chosen, enabled, current, current_enabled, false)
                        .with_site(site),
                );
                left[chosen.index()] -= 1;
                fp = fp.wrapping_mul(31).wrapping_add(chosen.index() as u64 + 1);
                sink.visit(fp);
                current = Some(chosen);
            }
            ExecutionResult::from_trace(icb_core::ExecutionOutcome::Terminated, trace)
        }
    }

    #[test]
    fn profiles_a_full_icb_run() {
        let mut profiler = ExplorationProfiler::new();
        let report = Search::over(&TwoSites)
            .config(SearchConfig::default())
            .observer(&mut profiler)
            .run()
            .unwrap();
        let run = profiler.run_report();
        assert_eq!(run.strategy, "icb");
        assert_eq!(run.executions, report.executions);
        assert_eq!(run.distinct_states, report.distinct_states);
        assert!(run.completed);
        assert!(run.elapsed.is_some());
        // Per-bound rows mirror the library report exactly.
        assert_eq!(run.bounds.len(), report.bound_stats().len());
        for (row, stats) in run.bounds.iter().zip(report.bound_stats()) {
            assert_eq!(row.bound, stats.bound);
            assert_eq!(row.executions, stats.executions);
            assert_eq!(row.cumulative_states, stats.cumulative_states);
            assert_eq!(row.bugs_found, stats.bugs_found);
        }
        // Sites were attributed: every one of the 4 per-thread steps
        // appears, and preemptions landed somewhere.
        assert_eq!(run.sites.len(), 4);
        let total_preemptions: usize = run.sites.iter().map(|s| s.preemptions).sum();
        assert!(total_preemptions > 0);
        let total_choices: usize = run.sites.iter().map(|s| s.choices).sum();
        assert_eq!(total_choices, report.executions * 4);
    }
}
