//! Rate-limited live progress reporting.

use std::io::Write;
use std::time::{Duration, Instant};

use icb_core::bounds;
use icb_core::search::{BoundStats, SearchReport};
use icb_core::telemetry::{AbortReason, ResumeInfo};
use icb_core::{ExecStats, ExecutionOutcome, SearchObserver};

/// Prints a live status line while a search runs.
///
/// Output is rate-limited (default: at most one line per 250 ms), so
/// attaching the reporter to a search running tens of thousands of
/// executions per second costs almost nothing. Bound transitions and the
/// final summary are always printed.
///
/// When the program's parameters are supplied via
/// [`with_theorem1`](ProgressReporter::with_theorem1), the reporter
/// estimates the remaining work of the current bound from the paper's
/// Theorem 1 ceiling — the number of executions with `c` preemptions is
/// at most `C(nk, c) · (nb + c)!` — and the observed execution rate,
/// and prints an ETA. The ceiling is loose (it counts infeasible
/// schedules), so the ETA is an upper bound and is capped at 10⁶
/// seconds before the reporter gives up and prints `eta >1e6s`.
#[derive(Debug)]
pub struct ProgressReporter<W: Write> {
    out: W,
    min_interval: Duration,
    last_line: Option<Instant>,
    started: Option<Instant>,
    strategy: String,
    bound: Option<usize>,
    bound_executions: usize,
    executions: usize,
    distinct_states: usize,
    bugs: usize,
    queue_depth: usize,
    max_steps: usize,
    /// `(threads, blocking ops per thread)` for the Theorem 1 ETA.
    theorem1: Option<(u64, u64)>,
    /// Executions inherited from a checkpoint: they predate this
    /// segment's wall clock, so rate and ETA must not count them.
    resumed_base: usize,
}

impl ProgressReporter<std::io::Stderr> {
    /// A reporter printing to standard error.
    pub fn stderr() -> Self {
        ProgressReporter::to_writer(std::io::stderr())
    }
}

impl<W: Write> ProgressReporter<W> {
    /// A reporter printing to `out`.
    pub fn to_writer(out: W) -> Self {
        ProgressReporter {
            out,
            min_interval: Duration::from_millis(250),
            last_line: None,
            started: None,
            strategy: String::new(),
            bound: None,
            bound_executions: 0,
            executions: 0,
            distinct_states: 0,
            bugs: 0,
            queue_depth: 0,
            max_steps: 0,
            theorem1: None,
            resumed_base: 0,
        }
    }

    /// Sets the minimum interval between status lines.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.min_interval = interval;
        self
    }

    /// Enables the Theorem-1 ETA for a program with `threads` threads,
    /// each executing at most `blocking` potentially blocking operations.
    /// The per-thread step count `k` is estimated from the longest
    /// execution observed so far. `threads` is clamped to at least 1 so
    /// a degenerate parameterization cannot poison the estimate with
    /// divisions by zero.
    pub fn with_theorem1(mut self, threads: u64, blocking: u64) -> Self {
        self.theorem1 = Some((threads.max(1), blocking));
        self
    }

    fn due(&self) -> bool {
        self.last_line
            .is_none_or(|t| t.elapsed() >= self.min_interval)
    }

    /// Upper bound on the seconds left in the current bound, from
    /// Theorem 1's ceiling and the observed execution rate.
    fn eta_secs(&self) -> Option<f64> {
        let (n, b) = self.theorem1?;
        let c = self.bound? as u64;
        let k = ((self.max_steps as u64) / n.max(1)).max(1);
        let secs = self.started?.elapsed().as_secs_f64();
        let fresh = self.executions.saturating_sub(self.resumed_base);
        if secs <= 0.0 || fresh == 0 {
            return None;
        }
        let rate = fresh as f64 / secs;
        if !rate.is_finite() || rate <= 0.0 {
            return None;
        }
        // Log-space first: the ceiling overflows u128 long before the
        // search becomes infeasible to *estimate*.
        let ln_ceiling = bounds::ln_executions_with_preemptions(n, k, b, c);
        if ln_ceiling.is_nan() {
            return None;
        }
        if ln_ceiling > 60.0 {
            return Some(f64::INFINITY);
        }
        let ceiling = ln_ceiling.exp();
        // At bound 0 (or once a bound overruns its loose ceiling) the
        // remaining work clamps to zero rather than going negative.
        let remaining = (ceiling - self.bound_executions as f64).max(0.0);
        let eta = remaining / rate;
        if eta.is_nan() {
            return None;
        }
        Some(eta)
    }

    fn status_line(&mut self, force: bool) {
        if !force && !self.due() {
            return;
        }
        self.last_line = Some(Instant::now());
        let rate = match self.started {
            Some(s) if s.elapsed().as_secs_f64() > 0.0 => {
                self.executions.saturating_sub(self.resumed_base) as f64 / s.elapsed().as_secs_f64()
            }
            _ => 0.0,
        };
        let mut line = format!(
            "[{}] {} execs ({:.0}/s), {} states",
            self.strategy, self.executions, rate, self.distinct_states
        );
        if let Some(b) = self.bound {
            line.push_str(&format!(", bound {b} (queue {})", self.queue_depth));
        }
        if self.bugs > 0 {
            line.push_str(&format!(", {} bugs", self.bugs));
        }
        match self.eta_secs() {
            Some(eta) if eta.is_finite() && eta <= 1e6 => {
                line.push_str(&format!(", eta {eta:.1}s"));
            }
            Some(_) => line.push_str(", eta >1e6s"),
            None => {}
        }
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }
}

impl<W: Write> SearchObserver for ProgressReporter<W> {
    fn search_started(&mut self, strategy: &str) {
        self.strategy = strategy.to_string();
        self.started = Some(Instant::now());
    }

    fn search_resumed(&mut self, info: &ResumeInfo) {
        // Seed the cumulative counters from the snapshot so the status
        // line is truthful, but base the rate (and thus the ETA) on the
        // executions this segment actually performs.
        self.resumed_base = info.executions;
        self.executions = info.executions;
        self.distinct_states = info.distinct_states;
        self.bound = Some(info.bound);
        self.bound_executions = info.bound_executions;
        let _ = writeln!(
            self.out,
            "[{}] resumed from checkpoint: {} execs, {} states, bound {}",
            self.strategy, info.executions, info.distinct_states, info.bound
        );
        let _ = self.out.flush();
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        _outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        self.executions = index;
        self.bound_executions += 1;
        self.distinct_states = distinct_states;
        self.max_steps = self.max_steps.max(stats.steps);
        self.status_line(false);
    }

    fn bound_started(&mut self, bound: usize, work_items: usize) {
        self.bound = Some(bound);
        self.bound_executions = 0;
        self.queue_depth = 0;
        let _ = writeln!(
            self.out,
            "[{}] entering bound {bound} ({work_items} work items)",
            self.strategy
        );
        let _ = self.out.flush();
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        let _ = writeln!(
            self.out,
            "[{}] bound {} done: {} execs in {:.2}s, {} states, {} bugs",
            self.strategy,
            stats.bound,
            stats.executions,
            wall_time.as_secs_f64(),
            stats.cumulative_states,
            stats.bugs_found
        );
        let _ = self.out.flush();
    }

    fn bug_found(&mut self, bug: &icb_core::search::BugReport) {
        self.bugs += 1;
        let _ = writeln!(
            self.out,
            "[{}] bug #{} at execution {}: {} ({} preemptions)",
            self.strategy, self.bugs, bug.execution_index, bug.outcome, bug.preemptions
        );
        let _ = self.out.flush();
    }

    fn work_queue_depth(&mut self, depth: usize) {
        self.queue_depth = depth;
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        let _ = writeln!(self.out, "[{}] stopping: {reason}", self.strategy);
        let _ = self.out.flush();
    }

    fn search_finished(&mut self, report: &SearchReport) {
        self.executions = report.executions;
        self.distinct_states = report.distinct_states;
        // A forced final status line; rendering the report itself is the
        // caller's business (explore already prints it to stdout).
        self.status_line(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_bound_transitions_and_summary() {
        let mut p = ProgressReporter::to_writer(Vec::new());
        p.search_started("icb");
        p.bound_started(0, 1);
        p.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 2);
        p.bound_completed(
            &BoundStats {
                bound: 0,
                executions: 1,
                cumulative_states: 2,
                bugs_found: 0,
            },
            Duration::from_millis(5),
        );
        p.search_finished(&SearchReport {
            strategy: "icb".into(),
            executions: 1,
            distinct_states: 2,
            ..SearchReport::default()
        });
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("entering bound 0"), "{text}");
        assert!(text.contains("bound 0 done"), "{text}");
        assert!(text.contains("[icb] 1 execs"), "{text}");
    }

    #[test]
    fn rate_limit_suppresses_spam() {
        let mut p =
            ProgressReporter::to_writer(Vec::new()).with_interval(Duration::from_secs(3600));
        p.search_started("dfs");
        for i in 1..=100 {
            p.execution_finished(i, &ExecStats::default(), &ExecutionOutcome::Terminated, i);
        }
        let text = String::from_utf8(p.out).unwrap();
        // Only the very first status line makes it through the limiter.
        assert_eq!(text.lines().count(), 1, "{text}");
    }

    #[test]
    fn resume_seeds_counters_but_not_the_rate() {
        let mut p = ProgressReporter::to_writer(Vec::new()).with_interval(Duration::ZERO);
        p.search_started("icb");
        p.search_resumed(&ResumeInfo {
            executions: 1_000_000,
            distinct_states: 5000,
            bound: 2,
            bound_executions: 10,
        });
        std::thread::sleep(Duration::from_millis(5));
        p.execution_finished(
            1_000_001,
            &ExecStats::default(),
            &ExecutionOutcome::Terminated,
            5001,
        );
        let text = String::from_utf8(p.out).unwrap();
        assert!(
            text.contains("resumed from checkpoint: 1000000 execs"),
            "{text}"
        );
        // The status line shows the cumulative count…
        assert!(text.contains("1000001 execs"), "{text}");
        // …but the rate reflects only this segment's single execution
        // over ≥5 ms of wall clock, so it cannot reach inherited scale.
        let rate_part = text
            .lines()
            .last()
            .and_then(|l| l.split('(').nth(1))
            .unwrap()
            .to_string();
        let rate: f64 = rate_part
            .split("/s")
            .next()
            .unwrap()
            .parse()
            .expect("rate number");
        assert!(
            rate < 10_000.0,
            "inherited executions leaked into rate: {text}"
        );
    }

    #[test]
    fn eta_appears_with_theorem1_params() {
        let mut p = ProgressReporter::to_writer(Vec::new())
            .with_interval(Duration::ZERO)
            .with_theorem1(2, 1);
        p.search_started("icb");
        p.bound_started(0, 1);
        std::thread::sleep(Duration::from_millis(2));
        p.execution_finished(
            1,
            &ExecStats {
                steps: 4,
                ..ExecStats::default()
            },
            &ExecutionOutcome::Terminated,
            2,
        );
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("eta"), "{text}");
    }

    #[test]
    fn eta_at_bound_zero_clamps_instead_of_going_negative() {
        let mut p = ProgressReporter::to_writer(Vec::new())
            .with_interval(Duration::ZERO)
            .with_theorem1(2, 1);
        p.search_started("icb");
        p.bound_started(0, 1);
        std::thread::sleep(Duration::from_millis(2));
        // Far more executions than bound 0's tiny ceiling: remaining
        // work must clamp to 0, not print a negative ETA.
        for i in 1..=50 {
            p.execution_finished(
                i,
                &ExecStats {
                    steps: 4,
                    ..ExecStats::default()
                },
                &ExecutionOutcome::Terminated,
                i,
            );
        }
        let text = String::from_utf8(p.out).unwrap();
        assert!(!text.contains("eta -"), "{text}");
        assert!(text.contains("eta 0.0s"), "{text}");
    }

    #[test]
    fn degenerate_theorem1_params_never_print_nan() {
        let mut p = ProgressReporter::to_writer(Vec::new())
            .with_interval(Duration::ZERO)
            .with_theorem1(0, 0);
        p.search_started("icb");
        p.bound_started(0, 0);
        std::thread::sleep(Duration::from_millis(2));
        p.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 1);
        let text = String::from_utf8(p.out).unwrap();
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("eta -"), "{text}");
    }

    #[test]
    fn empty_bound_is_reported_without_an_eta_blowup() {
        let mut p = ProgressReporter::to_writer(Vec::new())
            .with_interval(Duration::ZERO)
            .with_theorem1(2, 1);
        p.search_started("icb");
        // A bound can legitimately start with zero deferred work items
        // (everything at the previous bound completed without deferral).
        p.bound_started(3, 0);
        p.search_finished(&SearchReport {
            strategy: "icb".into(),
            ..SearchReport::default()
        });
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("entering bound 3 (0 work items)"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        // No executions happened: the ETA must be absent, not infinite.
        assert!(!text.contains("eta"), "{text}");
    }
}
