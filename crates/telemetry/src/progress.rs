//! Rate-limited live progress reporting.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use icb_core::search::{BoundStats, SearchReport};
use icb_core::telemetry::{AbortReason, ResumeInfo};
use icb_core::{ExecStats, ExecutionOutcome, MetricsRegistry, SearchObserver};

/// Prints a live status line while a search runs.
///
/// Output is rate-limited (default: at most one line per 250 ms), so
/// attaching the reporter to a search running tens of thousands of
/// executions per second costs almost nothing. Bound transitions and the
/// final summary are always printed.
///
/// All counters behind the status line — executions, rate, distinct
/// states, the active bound, queue depth, and the Theorem-1 ETA — come
/// from a [`MetricsRegistry`], the same registry that backs `/metrics`
/// and `explore top`. By default the reporter owns a private registry
/// and feeds it from the events it observes; pass the search's shared
/// registry via [`with_registry`](ProgressReporter::with_registry) and
/// the reporter becomes a pure renderer, reading figures the
/// [`MetricsBridge`](icb_core::MetricsBridge) already mirrored.
///
/// When Theorem-1 parameters are supplied (via
/// [`MetricsRegistry::set_theorem1`] on the reporter's
/// [`registry`](ProgressReporter::registry)), the reporter prints an ETA
/// for the current bound from the paper's ceiling — the number of
/// executions with `c` preemptions is at most `C(nk, c) · (nb + c)!` —
/// and the observed execution rate. The ceiling is loose (it counts
/// infeasible schedules), so the ETA is an upper bound and is capped at
/// 10⁶ seconds before the reporter gives up and prints `eta >1e6s`.
#[derive(Debug)]
pub struct ProgressReporter<W: Write> {
    out: W,
    min_interval: Duration,
    last_line: Option<Instant>,
    strategy: String,
    /// Bugs printed so far; deliberately private to the reporter (the
    /// registry counts *reported* bugs too, but numbering the `bug #N`
    /// lines belongs to the renderer, not the metrics layer).
    bugs: usize,
    registry: Arc<MetricsRegistry>,
    /// Whether the reporter must feed `registry` itself. False when the
    /// registry is shared: the [`MetricsBridge`](icb_core::MetricsBridge)
    /// upstream already mirrors every event before forwarding it here,
    /// and double-feeding would double-count histogram buckets.
    owns_registry: bool,
}

impl ProgressReporter<std::io::Stderr> {
    /// A reporter printing to standard error.
    pub fn stderr() -> Self {
        ProgressReporter::to_writer(std::io::stderr())
    }
}

impl<W: Write> ProgressReporter<W> {
    /// A reporter printing to `out`, backed by a private registry.
    pub fn to_writer(out: W) -> Self {
        ProgressReporter {
            out,
            min_interval: Duration::from_millis(250),
            last_line: None,
            strategy: String::new(),
            bugs: 0,
            registry: Arc::new(MetricsRegistry::new()),
            owns_registry: true,
        }
    }

    /// Sets the minimum interval between status lines.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.min_interval = interval;
        self
    }

    /// Renders from `registry` instead of a private one.
    ///
    /// Use this when the search already mirrors its events into a
    /// registry (`Search::metrics`): the reporter stops feeding counters
    /// itself and becomes a read-only view, so the status line, the
    /// `/metrics` page, and `explore top` all show the same numbers.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = registry;
        self.owns_registry = false;
        self
    }

    /// The registry backing this reporter's figures.
    ///
    /// For a reporter with a private registry, this is where to supply
    /// Theorem-1 parameters: `reporter.registry().set_theorem1(n, b)`.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Enables the Theorem-1 ETA for a program with `threads` threads,
    /// each executing at most `blocking` potentially blocking operations.
    #[deprecated(
        since = "0.6.0",
        note = "set Theorem-1 parameters on the registry instead: \
                `reporter.registry().set_theorem1(threads, blocking)` (or on \
                the shared registry passed to `with_registry`)"
    )]
    pub fn with_theorem1(self, threads: u64, blocking: u64) -> Self {
        self.registry.set_theorem1(threads, blocking);
        self
    }

    fn due(&self) -> bool {
        self.last_line
            .is_none_or(|t| t.elapsed() >= self.min_interval)
    }

    fn status_line(&mut self, force: bool) {
        if !force && !self.due() {
            return;
        }
        self.last_line = Some(Instant::now());
        let mut line = format!(
            "[{}] {} execs ({:.0}/s), {} states",
            self.strategy,
            self.registry.executions(),
            self.registry.fresh_rate(),
            self.registry.distinct_states()
        );
        if let Some(b) = self.registry.current_bound() {
            line.push_str(&format!(
                ", bound {b} (queue {})",
                self.registry.work_queue_depth()
            ));
        }
        if self.bugs > 0 {
            line.push_str(&format!(", {} bugs", self.bugs));
        }
        match self.registry.eta_seconds() {
            Some(eta) if eta.is_finite() && eta <= 1e6 => {
                line.push_str(&format!(", eta {eta:.1}s"));
            }
            Some(_) => line.push_str(", eta >1e6s"),
            None => {}
        }
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }
}

impl<W: Write> SearchObserver for ProgressReporter<W> {
    fn search_started(&mut self, strategy: &str) {
        self.strategy = strategy.to_string();
        if self.owns_registry {
            self.registry.mark_started();
            self.registry.set_strategy(strategy);
        }
    }

    fn search_resumed(&mut self, info: &ResumeInfo) {
        // The registry seeds its cumulative counters from the snapshot so
        // the status line is truthful, but bases the rate (and thus the
        // ETA) on the executions this segment actually performs.
        if self.owns_registry {
            self.registry.record_resume(info);
        }
        let _ = writeln!(
            self.out,
            "[{}] resumed from checkpoint: {} execs, {} states, bound {}",
            self.strategy, info.executions, info.distinct_states, info.bound
        );
        let _ = self.out.flush();
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        if self.owns_registry {
            self.registry
                .record_execution(index, stats, outcome, distinct_states);
        }
        self.status_line(false);
    }

    fn bound_started(&mut self, bound: usize, work_items: usize) {
        if self.owns_registry {
            self.registry.record_bound_started(bound);
        }
        let _ = writeln!(
            self.out,
            "[{}] entering bound {bound} ({work_items} work items)",
            self.strategy
        );
        let _ = self.out.flush();
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        let _ = writeln!(
            self.out,
            "[{}] bound {} done: {} execs in {:.2}s, {} states, {} bugs",
            self.strategy,
            stats.bound,
            stats.executions,
            wall_time.as_secs_f64(),
            stats.cumulative_states,
            stats.bugs_found
        );
        let _ = self.out.flush();
    }

    fn bug_found(&mut self, bug: &icb_core::search::BugReport) {
        if self.owns_registry {
            self.registry.bug_reported();
        }
        self.bugs += 1;
        let _ = writeln!(
            self.out,
            "[{}] bug #{} at execution {}: {} ({} preemptions)",
            self.strategy, self.bugs, bug.execution_index, bug.outcome, bug.preemptions
        );
        let _ = self.out.flush();
    }

    fn work_queue_depth(&mut self, depth: usize) {
        if self.owns_registry {
            self.registry.set_work_queue_depth(depth);
        }
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        let _ = writeln!(self.out, "[{}] stopping: {reason}", self.strategy);
        let _ = self.out.flush();
    }

    fn search_finished(&mut self, report: &SearchReport) {
        if self.owns_registry {
            self.registry.record_finished(report);
        }
        // A forced final status line; rendering the report itself is the
        // caller's business (explore already prints it to stdout).
        self.status_line(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_bound_transitions_and_summary() {
        let mut p = ProgressReporter::to_writer(Vec::new());
        p.search_started("icb");
        p.bound_started(0, 1);
        p.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 2);
        p.bound_completed(
            &BoundStats {
                bound: 0,
                faults: 0,
                executions: 1,
                cumulative_states: 2,
                bugs_found: 0,
            },
            Duration::from_millis(5),
        );
        p.search_finished(&SearchReport {
            strategy: "icb".into(),
            executions: 1,
            distinct_states: 2,
            ..SearchReport::default()
        });
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("entering bound 0"), "{text}");
        assert!(text.contains("bound 0 done"), "{text}");
        assert!(text.contains("[icb] 1 execs"), "{text}");
    }

    #[test]
    fn rate_limit_suppresses_spam() {
        let mut p =
            ProgressReporter::to_writer(Vec::new()).with_interval(Duration::from_secs(3600));
        p.search_started("dfs");
        for i in 1..=100 {
            p.execution_finished(i, &ExecStats::default(), &ExecutionOutcome::Terminated, i);
        }
        let text = String::from_utf8(p.out).unwrap();
        // Only the very first status line makes it through the limiter.
        assert_eq!(text.lines().count(), 1, "{text}");
    }

    #[test]
    fn resume_seeds_counters_but_not_the_rate() {
        let mut p = ProgressReporter::to_writer(Vec::new()).with_interval(Duration::ZERO);
        p.search_started("icb");
        p.search_resumed(&ResumeInfo {
            executions: 1_000_000,
            distinct_states: 5000,
            bound: 2,
            bound_executions: 10,
        });
        std::thread::sleep(Duration::from_millis(5));
        p.execution_finished(
            1_000_001,
            &ExecStats::default(),
            &ExecutionOutcome::Terminated,
            5001,
        );
        let text = String::from_utf8(p.out).unwrap();
        assert!(
            text.contains("resumed from checkpoint: 1000000 execs"),
            "{text}"
        );
        // The status line shows the cumulative count…
        assert!(text.contains("1000001 execs"), "{text}");
        // …but the rate reflects only this segment's single execution
        // over ≥5 ms of wall clock, so it cannot reach inherited scale.
        let rate_part = text
            .lines()
            .last()
            .and_then(|l| l.split('(').nth(1))
            .unwrap()
            .to_string();
        let rate: f64 = rate_part
            .split("/s")
            .next()
            .unwrap()
            .parse()
            .expect("rate number");
        assert!(
            rate < 10_000.0,
            "inherited executions leaked into rate: {text}"
        );
    }

    #[test]
    fn eta_appears_with_theorem1_params() {
        let mut p = ProgressReporter::to_writer(Vec::new()).with_interval(Duration::ZERO);
        p.registry().set_theorem1(2, 1);
        p.search_started("icb");
        p.bound_started(0, 1);
        std::thread::sleep(Duration::from_millis(2));
        p.execution_finished(
            1,
            &ExecStats {
                steps: 4,
                ..ExecStats::default()
            },
            &ExecutionOutcome::Terminated,
            2,
        );
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("eta"), "{text}");
    }

    /// Back-compat: the deprecated builder still routes the parameters
    /// into the registry.
    #[test]
    #[allow(deprecated)]
    fn deprecated_theorem1_builder_still_works() {
        let mut p = ProgressReporter::to_writer(Vec::new())
            .with_interval(Duration::ZERO)
            .with_theorem1(2, 1);
        p.search_started("icb");
        p.bound_started(0, 1);
        std::thread::sleep(Duration::from_millis(2));
        p.execution_finished(
            1,
            &ExecStats {
                steps: 4,
                ..ExecStats::default()
            },
            &ExecutionOutcome::Terminated,
            2,
        );
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("eta"), "{text}");
    }

    #[test]
    fn eta_at_bound_zero_clamps_instead_of_going_negative() {
        let mut p = ProgressReporter::to_writer(Vec::new()).with_interval(Duration::ZERO);
        p.registry().set_theorem1(2, 1);
        p.search_started("icb");
        p.bound_started(0, 1);
        std::thread::sleep(Duration::from_millis(2));
        // Far more executions than bound 0's tiny ceiling: remaining
        // work must clamp to 0, not print a negative ETA.
        for i in 1..=50 {
            p.execution_finished(
                i,
                &ExecStats {
                    steps: 4,
                    ..ExecStats::default()
                },
                &ExecutionOutcome::Terminated,
                i,
            );
        }
        let text = String::from_utf8(p.out).unwrap();
        assert!(!text.contains("eta -"), "{text}");
        assert!(text.contains("eta 0.0s"), "{text}");
    }

    #[test]
    fn degenerate_theorem1_params_never_print_nan() {
        let mut p = ProgressReporter::to_writer(Vec::new()).with_interval(Duration::ZERO);
        p.registry().set_theorem1(0, 0);
        p.search_started("icb");
        p.bound_started(0, 0);
        std::thread::sleep(Duration::from_millis(2));
        p.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 1);
        let text = String::from_utf8(p.out).unwrap();
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("eta -"), "{text}");
    }

    #[test]
    fn empty_bound_is_reported_without_an_eta_blowup() {
        let mut p = ProgressReporter::to_writer(Vec::new()).with_interval(Duration::ZERO);
        p.registry().set_theorem1(2, 1);
        p.search_started("icb");
        // A bound can legitimately start with zero deferred work items
        // (everything at the previous bound completed without deferral).
        p.bound_started(3, 0);
        p.search_finished(&SearchReport {
            strategy: "icb".into(),
            ..SearchReport::default()
        });
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("entering bound 3 (0 work items)"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        // No executions happened: the ETA must be absent, not infinite.
        assert!(!text.contains("eta"), "{text}");
    }

    #[test]
    fn shared_registry_reporter_renders_without_feeding() {
        // When the registry is shared, upstream (the MetricsBridge)
        // feeds it; the reporter renders exactly those figures and never
        // double-counts the step histogram.
        let registry = Arc::new(MetricsRegistry::new());
        let mut p = ProgressReporter::to_writer(Vec::new())
            .with_interval(Duration::ZERO)
            .with_registry(Arc::clone(&registry));
        // Simulate the bridge mirroring an event before forwarding it.
        registry.mark_started();
        registry.set_strategy("icb");
        p.search_started("icb");
        let stats = ExecStats {
            steps: 3,
            ..ExecStats::default()
        };
        registry.record_execution(5, &stats, &ExecutionOutcome::Terminated, 4);
        p.execution_finished(5, &stats, &ExecutionOutcome::Terminated, 4);
        let text = String::from_utf8(p.out).unwrap();
        assert!(text.contains("[icb] 5 execs"), "{text}");
        assert!(text.contains("4 states"), "{text}");
        let (_, _, count) = registry.step_histogram();
        assert_eq!(count, 1, "reporter must not double-feed a shared registry");
    }
}
