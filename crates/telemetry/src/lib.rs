//! Concrete [`SearchObserver`] implementations for the ICB checker.
//!
//! `icb-core` defines the observer *interface* (`icb_core::telemetry`);
//! this crate ships the sinks that make it useful:
//!
//! * [`MetricsRecorder`] — in-memory counters and histograms: executions
//!   per second, steps-per-execution distribution, preemption
//!   distribution, work-queue high-water mark, per-bound wall time and
//!   the coverage curve. The benchmark harness sources its figures from
//!   here instead of re-tallying reports.
//! * [`JsonlSink`] — streams every event as one JSON object per line to
//!   any `io::Write`, for offline analysis of long searches.
//! * [`ProgressReporter`] — rate-limited live status line (current
//!   bound, executions, distinct states, and an ETA derived from the
//!   paper's Theorem 1 ceiling).
//! * [`EventLog`] — records events as owned [`Event`] values; the test
//!   suite uses it to assert the observer event grammar, and it doubles
//!   as a scriptable sink for ad-hoc tooling.
//! * [`MultiObserver`] — fans one event stream out to several observers.
//! * [`registry`] / [`render_prometheus`] / [`MetricsServer`] — the live
//!   introspection layer: a lock-free [`MetricsRegistry`] fed by the
//!   drivers, rendered as a Prometheus text-exposition page and served
//!   over a dependency-free HTTP listener (`explore run
//!   --serve-metrics`, polled by `explore top`).
//! * [`ExplorationProfiler`] — per-site preemption attribution, per-bound
//!   coverage rows, and wall-clock phase totals, aggregated live into a
//!   [`RunReport`].
//! * [`RunReport`] — the plain-data run summary behind `explore report`:
//!   built live by the profiler or reconstructed from a [`JsonlSink`] log
//!   via [`RunReport::from_jsonl`], rendered with [`render_text`] /
//!   [`render_markdown`] into the paper's Figure 7/8-style tables.
//!
//! [`SearchObserver`]: icb_core::SearchObserver

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event_log;
pub mod export;
mod http;
mod jsonl;
mod metrics;
mod multi;
mod profiler;
mod progress;
pub mod registry;
mod report;

pub use event_log::{Event, EventLog};
pub use export::render_prometheus;
pub use http::{parse_exposition, scrape, series_value, MetricsServer};
pub use jsonl::JsonlSink;
pub use metrics::{Histogram, MetricsRecorder};
pub use multi::MultiObserver;
pub use profiler::ExplorationProfiler;
pub use progress::ProgressReporter;
pub use registry::{MetricsBridge, MetricsRegistry, MetricsSnapshot, WorkerStats};
pub use report::{
    render_markdown, render_text, BoundRow, PhaseTotals, RunReport, SiteRow, ThroughputSample,
    WorkerUtilRow,
};
