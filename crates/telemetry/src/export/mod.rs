//! Exporters turning in-memory run state into external formats:
//! Prometheus text exposition (this module) and Chrome trace-event JSON
//! ([`chrome`]).
//!
//! # Prometheus text exposition
//!
//! The output follows the text exposition format version 0.0.4 — `# HELP`
//! / `# TYPE` comment pairs followed by one sample per line — which every
//! Prometheus-compatible scraper (and `explore top`) understands. The
//! renderer is dependency-free: it is a deterministic string builder over
//! a registry snapshot, so a golden test can pin the exact page layout.
//!
//! Conventions:
//!
//! * every series is prefixed `icb_`;
//! * cumulative counters end in `_total`, instantaneous values are
//!   gauges;
//! * per-worker and per-shard series carry `worker="N"` / `shard="N"`
//!   labels and are emitted only for configured workers / touched
//!   shards, keeping the page small at high shard counts;
//! * the step histogram uses bit-length buckets (`le` = `2^i - 1`),
//!   matching the registry's lock-free fixed-bucket layout.

pub mod chrome;

use icb_core::metrics::STEP_BUCKETS;
use icb_core::MetricsRegistry;

use std::fmt::Write as _;

/// Renders the registry as a Prometheus text-exposition (0.0.4) page.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let snap = registry.snapshot();
    let strategy = registry.strategy();
    let mut out = String::with_capacity(4096);

    let header = |out: &mut String, name: &str, kind: &str, help: &str| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    };

    header(
        &mut out,
        "icb_info",
        "gauge",
        "Constant 1; the strategy label rides on the series.",
    );
    let _ = writeln!(
        &mut out,
        "icb_info{{strategy=\"{}\"}} 1",
        strategy.replace('\\', "\\\\").replace('"', "\\\"")
    );

    let gauge = |out: &mut String, name: &str, help: &str, value: u64| {
        header(out, name, "gauge", help);
        let _ = writeln!(out, "{name} {value}");
    };
    let counter = |out: &mut String, name: &str, help: &str, value: u64| {
        header(out, name, "counter", help);
        let _ = writeln!(out, "{name} {value}");
    };

    header(
        &mut out,
        "icb_elapsed_seconds",
        "gauge",
        "Wall-clock seconds since the search started.",
    );
    let _ = writeln!(
        &mut out,
        "icb_elapsed_seconds {:.6}",
        snap.elapsed.as_secs_f64()
    );

    counter(
        &mut out,
        "icb_executions_total",
        "Executions performed (cumulative, including resumed segments).",
        snap.executions,
    );
    counter(
        &mut out,
        "icb_buggy_executions_total",
        "Executions that ended in a bug outcome.",
        snap.buggy_executions,
    );
    counter(
        &mut out,
        "icb_bugs_reported_total",
        "Distinct bugs reported.",
        snap.bugs_reported,
    );
    counter(
        &mut out,
        "icb_races_detected_total",
        "Data races flagged by the race detector.",
        snap.races_detected,
    );
    counter(
        &mut out,
        "icb_faults_injected_total",
        "Faults injected at fallible operations by the fault-bound search.",
        snap.faults_injected,
    );
    counter(
        &mut out,
        "icb_shrink_replays_total",
        "Replays spent shrinking witnesses (outside the search's execution count).",
        snap.shrink_replays,
    );
    gauge(
        &mut out,
        "icb_distinct_states",
        "Distinct program states visited (the paper's coverage metric).",
        snap.distinct_states,
    );
    if let Some(bound) = snap.bound {
        gauge(
            &mut out,
            "icb_current_bound",
            "Active preemption bound of the ICB driver.",
            bound,
        );
    }
    gauge(
        &mut out,
        "icb_bound_executions",
        "Executions performed inside the active bound.",
        snap.bound_executions,
    );
    gauge(
        &mut out,
        "icb_work_queue_depth",
        "Work items deferred to the next preemption bound.",
        snap.work_queue_depth,
    );
    counter(
        &mut out,
        "icb_work_items_deferred_total",
        "Work items ever deferred to a later bound.",
        snap.work_items_deferred,
    );
    gauge(
        &mut out,
        "icb_frontier_queue_depth",
        "Items queued in the shared parallel frontier.",
        snap.frontier_len,
    );
    counter(
        &mut out,
        "icb_frontier_pop_waits_total",
        "Frontier pops that blocked waiting for work.",
        snap.frontier_pop_waits,
    );
    counter(
        &mut out,
        "icb_frontier_lock_ops_total",
        "Frontier mutex acquisitions (the parallel drivers' known contention point).",
        snap.frontier_lock_ops,
    );
    counter(
        &mut out,
        "icb_steal_donations_total",
        "Work-stealing donations (a busy worker splitting its subtree).",
        snap.steal_donations,
    );
    counter(
        &mut out,
        "icb_steal_donated_items_total",
        "Work items moved by donations.",
        snap.steal_donated_items,
    );
    counter(
        &mut out,
        "icb_pump_recv_timeouts_total",
        "Event-pump receive timeouts (pump idle ticks).",
        snap.pump_recv_timeouts,
    );
    gauge(
        &mut out,
        "icb_pump_channel_depth",
        "Events queued between the workers and the observer pump.",
        snap.pump_channel_depth,
    );
    counter(
        &mut out,
        "icb_checkpoints_written_total",
        "Durable checkpoints written.",
        snap.checkpoints,
    );
    counter(
        &mut out,
        "icb_quarantined_total",
        "Traces quarantined after replay divergence.",
        snap.quarantined,
    );
    counter(
        &mut out,
        "icb_watchdog_trips_total",
        "Executions killed by the watchdog.",
        snap.watchdog_trips,
    );
    counter(
        &mut out,
        "icb_cache_hits_total",
        "Work items pruned by the fingerprint cache.",
        snap.cache_hits,
    );
    counter(
        &mut out,
        "icb_cache_stores_total",
        "Subtree entries recorded in the fingerprint cache.",
        snap.cache_stores,
    );
    counter(
        &mut out,
        "icb_cache_table_probes_total",
        "Fingerprint-table probes.",
        snap.cache_table_probes,
    );
    counter(
        &mut out,
        "icb_cache_table_hits_total",
        "Fingerprint-table probes answered covered.",
        snap.cache_table_hits,
    );

    let shards = registry.cache_shard_counters();
    if shards.iter().any(|&(p, _)| p > 0) {
        header(
            &mut out,
            "icb_cache_shard_probes_total",
            "counter",
            "Fingerprint-table probes per shard (touched shards only).",
        );
        for (i, &(probes, _)) in shards.iter().enumerate() {
            if probes > 0 {
                let _ = writeln!(
                    &mut out,
                    "icb_cache_shard_probes_total{{shard=\"{i}\"}} {probes}"
                );
            }
        }
        header(
            &mut out,
            "icb_cache_shard_hits_total",
            "counter",
            "Fingerprint-table hits per shard (touched shards only).",
        );
        for (i, &(probes, hits)) in shards.iter().enumerate() {
            if probes > 0 {
                let _ = writeln!(
                    &mut out,
                    "icb_cache_shard_hits_total{{shard=\"{i}\"}} {hits}"
                );
            }
        }
    }

    gauge(
        &mut out,
        "icb_workers",
        "Configured worker count.",
        snap.workers_configured.max(1),
    );

    header(
        &mut out,
        "icb_worker_busy_seconds_total",
        "counter",
        "Seconds each worker spent executing schedules.",
    );
    for (i, w) in snap.workers.iter().enumerate() {
        let _ = writeln!(
            &mut out,
            "icb_worker_busy_seconds_total{{worker=\"{i}\"}} {:.6}",
            w.busy_ns as f64 / 1e9
        );
    }
    header(
        &mut out,
        "icb_worker_idle_seconds_total",
        "counter",
        "Seconds each worker spent waiting for work.",
    );
    for (i, w) in snap.workers.iter().enumerate() {
        let _ = writeln!(
            &mut out,
            "icb_worker_idle_seconds_total{{worker=\"{i}\"}} {:.6}",
            w.idle_ns as f64 / 1e9
        );
    }
    header(
        &mut out,
        "icb_worker_executions_total",
        "counter",
        "Executions completed per worker.",
    );
    for (i, w) in snap.workers.iter().enumerate() {
        let _ = writeln!(
            &mut out,
            "icb_worker_executions_total{{worker=\"{i}\"}} {}",
            w.executions
        );
    }
    header(
        &mut out,
        "icb_worker_donations_total",
        "counter",
        "Work-stealing donations made per worker.",
    );
    for (i, w) in snap.workers.iter().enumerate() {
        let _ = writeln!(
            &mut out,
            "icb_worker_donations_total{{worker=\"{i}\"}} {}",
            w.donations
        );
    }

    let (buckets, sum, count) = registry.step_histogram();
    header(
        &mut out,
        "icb_execution_steps",
        "histogram",
        "Steps per execution (bit-length buckets).",
    );
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        cumulative += n;
        if i + 1 == STEP_BUCKETS {
            let _ = writeln!(
                &mut out,
                "icb_execution_steps_bucket{{le=\"+Inf\"}} {cumulative}"
            );
        } else {
            // Bucket i holds step counts of bit length i: at most 2^i - 1.
            let le = (1u64 << i) - 1;
            let _ = writeln!(
                &mut out,
                "icb_execution_steps_bucket{{le=\"{le}\"}} {cumulative}"
            );
        }
    }
    let _ = writeln!(&mut out, "icb_execution_steps_sum {sum}");
    let _ = writeln!(&mut out, "icb_execution_steps_count {count}");

    if let Some(eta) = snap.eta_seconds {
        header(
            &mut out,
            "icb_eta_seconds",
            "gauge",
            "Theorem-1 upper bound on seconds left in the current bound.",
        );
        if eta.is_finite() {
            let _ = writeln!(&mut out, "icb_eta_seconds {eta:.3}");
        } else {
            let _ = writeln!(&mut out, "icb_eta_seconds +Inf");
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::{ExecStats, ExecutionOutcome};

    /// Replaces the wall-clock-dependent sample with a fixed token so
    /// the rest of the page can be compared exactly.
    fn normalize(page: &str) -> String {
        page.lines()
            .map(|l| {
                if l.starts_with("icb_elapsed_seconds ") {
                    "icb_elapsed_seconds <ELAPSED>".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    }

    #[test]
    fn exposition_page_is_golden() {
        let r = MetricsRegistry::new();
        r.set_strategy("icb");
        r.set_workers(2);
        r.record_bound_started(1);
        let stats = ExecStats {
            steps: 5,
            ..ExecStats::default()
        };
        r.record_execution(1, &stats, &ExecutionOutcome::Terminated, 3);
        r.record_execution(2, &stats, &ExecutionOutcome::Terminated, 4);
        r.cache_table_probe(1, false);
        r.cache_table_probe(1, true);
        r.shrink_replays_add(3);

        let got = normalize(&render_prometheus(&r));
        let want = "\
# HELP icb_info Constant 1; the strategy label rides on the series.
# TYPE icb_info gauge
icb_info{strategy=\"icb\"} 1
# HELP icb_elapsed_seconds Wall-clock seconds since the search started.
# TYPE icb_elapsed_seconds gauge
icb_elapsed_seconds <ELAPSED>
# HELP icb_executions_total Executions performed (cumulative, including resumed segments).
# TYPE icb_executions_total counter
icb_executions_total 2
# HELP icb_buggy_executions_total Executions that ended in a bug outcome.
# TYPE icb_buggy_executions_total counter
icb_buggy_executions_total 0
# HELP icb_bugs_reported_total Distinct bugs reported.
# TYPE icb_bugs_reported_total counter
icb_bugs_reported_total 0
# HELP icb_races_detected_total Data races flagged by the race detector.
# TYPE icb_races_detected_total counter
icb_races_detected_total 0
# HELP icb_faults_injected_total Faults injected at fallible operations by the fault-bound search.
# TYPE icb_faults_injected_total counter
icb_faults_injected_total 0
# HELP icb_shrink_replays_total Replays spent shrinking witnesses (outside the search's execution count).
# TYPE icb_shrink_replays_total counter
icb_shrink_replays_total 3
# HELP icb_distinct_states Distinct program states visited (the paper's coverage metric).
# TYPE icb_distinct_states gauge
icb_distinct_states 4
# HELP icb_current_bound Active preemption bound of the ICB driver.
# TYPE icb_current_bound gauge
icb_current_bound 1
# HELP icb_bound_executions Executions performed inside the active bound.
# TYPE icb_bound_executions gauge
icb_bound_executions 2
# HELP icb_work_queue_depth Work items deferred to the next preemption bound.
# TYPE icb_work_queue_depth gauge
icb_work_queue_depth 0
# HELP icb_work_items_deferred_total Work items ever deferred to a later bound.
# TYPE icb_work_items_deferred_total counter
icb_work_items_deferred_total 0
# HELP icb_frontier_queue_depth Items queued in the shared parallel frontier.
# TYPE icb_frontier_queue_depth gauge
icb_frontier_queue_depth 0
# HELP icb_frontier_pop_waits_total Frontier pops that blocked waiting for work.
# TYPE icb_frontier_pop_waits_total counter
icb_frontier_pop_waits_total 0
# HELP icb_frontier_lock_ops_total Frontier mutex acquisitions (the parallel drivers' known contention point).
# TYPE icb_frontier_lock_ops_total counter
icb_frontier_lock_ops_total 0
# HELP icb_steal_donations_total Work-stealing donations (a busy worker splitting its subtree).
# TYPE icb_steal_donations_total counter
icb_steal_donations_total 0
# HELP icb_steal_donated_items_total Work items moved by donations.
# TYPE icb_steal_donated_items_total counter
icb_steal_donated_items_total 0
# HELP icb_pump_recv_timeouts_total Event-pump receive timeouts (pump idle ticks).
# TYPE icb_pump_recv_timeouts_total counter
icb_pump_recv_timeouts_total 0
# HELP icb_pump_channel_depth Events queued between the workers and the observer pump.
# TYPE icb_pump_channel_depth gauge
icb_pump_channel_depth 0
# HELP icb_checkpoints_written_total Durable checkpoints written.
# TYPE icb_checkpoints_written_total counter
icb_checkpoints_written_total 0
# HELP icb_quarantined_total Traces quarantined after replay divergence.
# TYPE icb_quarantined_total counter
icb_quarantined_total 0
# HELP icb_watchdog_trips_total Executions killed by the watchdog.
# TYPE icb_watchdog_trips_total counter
icb_watchdog_trips_total 0
# HELP icb_cache_hits_total Work items pruned by the fingerprint cache.
# TYPE icb_cache_hits_total counter
icb_cache_hits_total 0
# HELP icb_cache_stores_total Subtree entries recorded in the fingerprint cache.
# TYPE icb_cache_stores_total counter
icb_cache_stores_total 0
# HELP icb_cache_table_probes_total Fingerprint-table probes.
# TYPE icb_cache_table_probes_total counter
icb_cache_table_probes_total 2
# HELP icb_cache_table_hits_total Fingerprint-table probes answered covered.
# TYPE icb_cache_table_hits_total counter
icb_cache_table_hits_total 1
# HELP icb_cache_shard_probes_total Fingerprint-table probes per shard (touched shards only).
# TYPE icb_cache_shard_probes_total counter
icb_cache_shard_probes_total{shard=\"1\"} 2
# HELP icb_cache_shard_hits_total Fingerprint-table hits per shard (touched shards only).
# TYPE icb_cache_shard_hits_total counter
icb_cache_shard_hits_total{shard=\"1\"} 1
# HELP icb_workers Configured worker count.
# TYPE icb_workers gauge
icb_workers 2
# HELP icb_worker_busy_seconds_total Seconds each worker spent executing schedules.
# TYPE icb_worker_busy_seconds_total counter
icb_worker_busy_seconds_total{worker=\"0\"} 0.000000
icb_worker_busy_seconds_total{worker=\"1\"} 0.000000
# HELP icb_worker_idle_seconds_total Seconds each worker spent waiting for work.
# TYPE icb_worker_idle_seconds_total counter
icb_worker_idle_seconds_total{worker=\"0\"} 0.000000
icb_worker_idle_seconds_total{worker=\"1\"} 0.000000
# HELP icb_worker_executions_total Executions completed per worker.
# TYPE icb_worker_executions_total counter
icb_worker_executions_total{worker=\"0\"} 0
icb_worker_executions_total{worker=\"1\"} 0
# HELP icb_worker_donations_total Work-stealing donations made per worker.
# TYPE icb_worker_donations_total counter
icb_worker_donations_total{worker=\"0\"} 0
icb_worker_donations_total{worker=\"1\"} 0
# HELP icb_execution_steps Steps per execution (bit-length buckets).
# TYPE icb_execution_steps histogram
icb_execution_steps_bucket{le=\"0\"} 0
icb_execution_steps_bucket{le=\"1\"} 0
icb_execution_steps_bucket{le=\"3\"} 0
icb_execution_steps_bucket{le=\"7\"} 2
icb_execution_steps_bucket{le=\"15\"} 2
icb_execution_steps_bucket{le=\"31\"} 2
icb_execution_steps_bucket{le=\"63\"} 2
icb_execution_steps_bucket{le=\"127\"} 2
icb_execution_steps_bucket{le=\"255\"} 2
icb_execution_steps_bucket{le=\"511\"} 2
icb_execution_steps_bucket{le=\"1023\"} 2
icb_execution_steps_bucket{le=\"2047\"} 2
icb_execution_steps_bucket{le=\"4095\"} 2
icb_execution_steps_bucket{le=\"8191\"} 2
icb_execution_steps_bucket{le=\"16383\"} 2
icb_execution_steps_bucket{le=\"32767\"} 2
icb_execution_steps_bucket{le=\"65535\"} 2
icb_execution_steps_bucket{le=\"131071\"} 2
icb_execution_steps_bucket{le=\"262143\"} 2
icb_execution_steps_bucket{le=\"524287\"} 2
icb_execution_steps_bucket{le=\"1048575\"} 2
icb_execution_steps_bucket{le=\"2097151\"} 2
icb_execution_steps_bucket{le=\"4194303\"} 2
icb_execution_steps_bucket{le=\"8388607\"} 2
icb_execution_steps_bucket{le=\"16777215\"} 2
icb_execution_steps_bucket{le=\"33554431\"} 2
icb_execution_steps_bucket{le=\"67108863\"} 2
icb_execution_steps_bucket{le=\"134217727\"} 2
icb_execution_steps_bucket{le=\"268435455\"} 2
icb_execution_steps_bucket{le=\"536870911\"} 2
icb_execution_steps_bucket{le=\"1073741823\"} 2
icb_execution_steps_bucket{le=\"2147483647\"} 2
icb_execution_steps_bucket{le=\"+Inf\"} 2
icb_execution_steps_sum 10
icb_execution_steps_count 2
";
        assert_eq!(got, want);
    }

    #[test]
    fn eta_series_appears_when_computable() {
        let r = MetricsRegistry::new();
        r.set_strategy("icb");
        r.set_theorem1(2, 2);
        r.mark_started();
        r.record_bound_started(0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let stats = ExecStats {
            steps: 4,
            ..ExecStats::default()
        };
        r.record_execution(1, &stats, &ExecutionOutcome::Terminated, 1);
        let page = render_prometheus(&r);
        assert!(page.contains("icb_eta_seconds"), "{page}");
    }

    #[test]
    fn strategy_label_is_escaped() {
        let r = MetricsRegistry::new();
        r.set_strategy("a\"b");
        let page = render_prometheus(&r);
        assert!(page.contains("icb_info{strategy=\"a\\\"b\"} 1"), "{page}");
    }
}
