//! Chrome trace-event JSON export: any execution — and the profiler's
//! phase spans — as a timeline loadable in Perfetto or
//! `chrome://tracing`.
//!
//! The output is the *JSON object format* of the trace-event
//! specification: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
//! One track per thread (`pid` 0, `tid` = thread id), one complete
//! (`"ph": "X"`) slice per step named after the step's attributed
//! [`SiteId`](icb_core::SiteId), an instant (`"ph": "i"`) event on the
//! preempting thread's track for every preemption, and a final instant
//! for the execution's outcome. The search's own replay / selection /
//! race-detection phase totals render as slices on a separate process
//! (`pid` 1).
//!
//! Timestamps are *synthetic*: step `i` occupies
//! `[i·10 µs, (i+1)·10 µs)`. The checker's scheduling quantum is a
//! logical step, not wall time, and synthetic ticks keep the rendering a
//! pure function of the trace — explanation bundles must be
//! byte-identical regardless of `--jobs` or machine load. Phase spans
//! ([`ChromeTrace::add_phases`]) are the one wall-clock exception, which
//! is why they live behind a separate opt-in call.

use std::fmt::Write as _;

use icb_core::{ExecutionOutcome, Trace};

use crate::report::PhaseTotals;

/// Microseconds per logical step in the synthetic timeline.
const TICK_US: u64 = 10;

/// Builder for a Chrome trace-event JSON document.
///
/// # Examples
///
/// ```
/// use icb_core::{ExecutionOutcome, Trace};
/// use icb_telemetry::export::chrome::ChromeTrace;
/// let json = ChromeTrace::new()
///     .add_execution(&Trace::new(), &ExecutionOutcome::Terminated)
///     .render();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace document.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Adds one execution: per-thread tracks of step slices, preemption
    /// instants, and a closing outcome instant. Deterministic — uses
    /// only the trace's logical step indices.
    pub fn add_execution(mut self, trace: &Trace, outcome: &ExecutionOutcome) -> Self {
        self.push_meta(0, None, "process_name", "execution");
        let mut threads: Vec<usize> = trace
            .entries()
            .iter()
            .flat_map(|e| e.enabled.iter().map(|t| t.index()))
            .chain(trace.entries().iter().map(|e| e.chosen.index()))
            .collect();
        threads.sort_unstable();
        threads.dedup();
        for &t in &threads {
            self.push_meta(0, Some(t), "thread_name", &format!("T{t}"));
        }
        for (i, e) in trace.entries().iter().enumerate() {
            let ts = i as u64 * TICK_US;
            let enabled = e
                .enabled
                .iter()
                .map(|t| format!("T{}", t.index()))
                .collect::<Vec<_>>()
                .join(" ");
            self.events.push(format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
                 \"args\":{{\"step\":{},\"enabled\":{},\"blocking\":{}}}}}",
                json_string(&e.site.to_string()),
                ts,
                TICK_US,
                e.chosen.index(),
                i,
                json_string(&enabled),
                e.blocking,
            ));
            if e.is_preemption() {
                let from = e
                    .current
                    .map_or_else(|| "?".to_string(), |t| format!("T{}", t.index()));
                self.events.push(format!(
                    "{{\"name\":\"preemption\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":0,\
                     \"tid\":{},\"args\":{{\"preempted\":{}}}}}",
                    ts,
                    e.chosen.index(),
                    json_string(&from),
                ));
            }
        }
        let end = trace.len() as u64 * TICK_US;
        let last_tid = trace.entries().last().map_or(0, |e| e.chosen.index());
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"s\":\"p\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"outcome\":{}}}}}",
            json_string(&format!("outcome: {}", kind(outcome))),
            end,
            last_tid,
            json_string(&outcome.to_string()),
        ));
        self
    }

    /// Adds the profiler's wall-clock phase totals as back-to-back
    /// slices on a dedicated `search phases` process (`pid` 1).
    ///
    /// Unlike [`add_execution`](ChromeTrace::add_execution) this encodes
    /// *measured wall time*, so two runs of the same search will not
    /// produce identical bytes; keep it out of artifacts that must be
    /// deterministic.
    pub fn add_phases(mut self, phases: &PhaseTotals) -> Self {
        self.push_meta(1, None, "process_name", "search phases");
        self.push_meta(1, Some(0), "thread_name", "phases");
        let mut ts = 0u64;
        for (name, d) in [
            ("replay", phases.replay),
            ("selection", phases.selection),
            ("race-detection", phases.race_detection),
        ] {
            let dur = (d.as_nanos() / 1_000) as u64;
            self.events.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\
                 \"tid\":0,\"args\":{{}}}}",
            ));
            ts += dur;
        }
        self
    }

    /// Renders the JSON object document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    fn push_meta(&mut self, pid: u32, tid: Option<usize>, kind: &str, name: &str) {
        let tid = tid.unwrap_or(0);
        self.events.push(format!(
            "{{\"name\":\"{kind}\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_string(name),
        ));
    }
}

/// Renders one execution as a complete Chrome trace document — the
/// `trace.chrome.json` of an explanation bundle.
pub fn execution_to_chrome(trace: &Trace, outcome: &ExecutionOutcome) -> String {
    ChromeTrace::new().add_execution(trace, outcome).render()
}

fn kind(outcome: &ExecutionOutcome) -> &'static str {
    match outcome {
        ExecutionOutcome::Terminated => "terminated",
        ExecutionOutcome::AssertionFailure { .. } => "assertion-failure",
        ExecutionOutcome::Deadlock { .. } => "deadlock",
        ExecutionOutcome::DataRace { .. } => "data-race",
        ExecutionOutcome::StepLimitExceeded => "step-limit-exceeded",
        ExecutionOutcome::ReplayDivergence { .. } => "replay-divergence",
        ExecutionOutcome::WatchdogTimeout => "watchdog-timeout",
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::{SiteId, Tid, TraceEntry};
    use std::time::Duration;

    fn sample() -> Trace {
        vec![
            TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], None, false, false)
                .with_site(SiteId::op("data", 3)),
            TraceEntry::new(Tid(1), vec![Tid(0), Tid(1)], Some(Tid(0)), true, true)
                .with_site(SiteId::op("acquire", 1)),
        ]
        .into()
    }

    /// The exact document for a two-step trace: pins the trace-event
    /// schema (names, phases, synthetic timestamps) that Perfetto /
    /// `chrome://tracing` consume.
    #[test]
    fn chrome_document_is_golden() {
        let got = execution_to_chrome(
            &sample(),
            &ExecutionOutcome::AssertionFailure {
                thread: Tid(1),
                message: "x".into(),
            },
        );
        let want = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"execution\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"T0\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":1,\"args\":{\"name\":\"T1\"}},\n",
            "{\"name\":\"data#3\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":0,\"tid\":0,\"args\":{\"step\":0,\"enabled\":\"T0 T1\",\"blocking\":false}},\n",
            "{\"name\":\"acquire#1\",\"ph\":\"X\",\"ts\":10,\"dur\":10,\"pid\":0,\"tid\":1,\"args\":{\"step\":1,\"enabled\":\"T0 T1\",\"blocking\":true}},\n",
            "{\"name\":\"preemption\",\"ph\":\"i\",\"ts\":10,\"s\":\"t\",\"pid\":0,\"tid\":1,\"args\":{\"preempted\":\"T0\"}},\n",
            "{\"name\":\"outcome: assertion-failure\",\"ph\":\"i\",\"ts\":20,\"s\":\"p\",\"pid\":0,\"tid\":1,\"args\":{\"outcome\":\"assertion failure in T1: x\"}}\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        );
        assert_eq!(got, want);
    }

    #[test]
    fn phase_spans_render_on_their_own_process() {
        let phases = PhaseTotals {
            replay: Duration::from_micros(30),
            selection: Duration::from_micros(5),
            race_detection: Duration::from_micros(7),
        };
        let json = ChromeTrace::new().add_phases(&phases).render();
        assert!(json.contains("\"name\":\"search phases\""));
        assert!(json.contains(
            "{\"name\":\"replay\",\"ph\":\"X\",\"ts\":0,\"dur\":30,\"pid\":1,\"tid\":0,\"args\":{}}"
        ));
        assert!(json.contains(
            "{\"name\":\"selection\",\"ph\":\"X\",\"ts\":30,\"dur\":5,\"pid\":1,\"tid\":0,\"args\":{}}"
        ));
        assert!(json.contains(
            "{\"name\":\"race-detection\",\"ph\":\"X\",\"ts\":35,\"dur\":7,\"pid\":1,\"tid\":0,\"args\":{}}"
        ));
    }

    #[test]
    fn document_is_balanced_json() {
        let json = ChromeTrace::new()
            .add_execution(&sample(), &ExecutionOutcome::Terminated)
            .add_phases(&PhaseTotals::default())
            .render();
        let (mut depth, mut square, mut in_str, mut esc) = (0i32, 0i32, false, false);
        for c in json.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth += 1,
                '}' => depth -= 1,
                '[' => square += 1,
                ']' => square -= 1,
                _ => {}
            }
            assert!(depth >= 0 && square >= 0);
        }
        assert_eq!((depth, square, in_str), (0, 0, false));
    }

    #[test]
    fn determinism_is_jobs_independent() {
        // Same trace, same document — the export uses no wall clock.
        let t = sample();
        let a = execution_to_chrome(&t, &ExecutionOutcome::Terminated);
        let b = execution_to_chrome(&t, &ExecutionOutcome::Terminated);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_renders_an_outcome_only() {
        let json = execution_to_chrome(&Trace::new(), &ExecutionOutcome::Terminated);
        assert!(json.contains("outcome: terminated"));
    }
}
