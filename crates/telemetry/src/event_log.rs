//! An observer that records every event as an owned value.

use std::time::Duration;

use icb_core::search::{BoundStats, BugReport, QuarantinedTrace, SearchReport};
use icb_core::telemetry::{AbortReason, ResumeInfo};
use icb_core::{
    ChoiceKind, ExecStats, ExecutionOutcome, MetricsSnapshot, Phase, SearchObserver, SiteId,
};

/// One recorded search event (an owned mirror of the
/// [`SearchObserver`] hook arguments).
#[derive(Clone, Debug)]
pub enum Event {
    /// `search_started(strategy)`.
    SearchStarted {
        /// The strategy label.
        strategy: String,
    },
    /// `execution_started(index)`.
    ExecutionStarted {
        /// 1-based execution index.
        index: usize,
    },
    /// `execution_finished(index, stats, outcome, distinct_states)`.
    ExecutionFinished {
        /// 1-based execution index.
        index: usize,
        /// Per-execution statistics.
        stats: ExecStats,
        /// How the execution ended.
        outcome: ExecutionOutcome,
        /// Cumulative distinct states after this execution.
        distinct_states: usize,
    },
    /// `bound_started(bound, work_items)`.
    BoundStarted {
        /// The preemption bound.
        bound: usize,
        /// Work items queued for it.
        work_items: usize,
    },
    /// `bound_completed(stats, wall_time)`.
    BoundCompleted {
        /// The per-bound statistics row.
        stats: BoundStats,
        /// Wall time spent inside the bound.
        wall_time: Duration,
    },
    /// `bug_found(bug)`.
    BugFound {
        /// The recorded bug report.
        bug: BugReport,
    },
    /// `work_item_deferred(next_bound)`.
    WorkItemDeferred {
        /// The bound the item was deferred to.
        next_bound: usize,
    },
    /// `work_queue_depth(depth)`.
    WorkQueueDepth {
        /// Current depth of the deferred queue.
        depth: usize,
    },
    /// `race_detected(description)`.
    RaceDetected {
        /// The detector's description of the racing accesses.
        description: String,
    },
    /// `choice_point(site, bound, kind)`.
    ChoicePoint {
        /// The program site the chosen step executed.
        site: SiteId,
        /// The active preemption bound (0 for non-ICB strategies).
        bound: usize,
        /// How the scheduler's choice relates to the running thread.
        kind: ChoiceKind,
    },
    /// `preemption_taken(site)`.
    PreemptionTaken {
        /// The site of the preempted thread's interrupted operation.
        site: SiteId,
    },
    /// `fault_injected(site, step)`.
    FaultInjected {
        /// The fallible operation's site.
        site: SiteId,
        /// The schedule step the injection happened at.
        step: usize,
    },
    /// `worker_panic(worker, message)`.
    WorkerPanic {
        /// The panicking worker's index.
        worker: usize,
        /// The panic payload rendered as text.
        message: String,
    },
    /// `phase_time(phase, elapsed)`.
    PhaseTime {
        /// Which phase the time belongs to.
        phase: Phase,
        /// Wall-clock attributed to it.
        elapsed: Duration,
    },
    /// `search_resumed(info)`.
    SearchResumed {
        /// The checkpoint's cumulative counters.
        info: ResumeInfo,
    },
    /// `checkpoint_written(executions)`.
    CheckpointWritten {
        /// Cumulative executions covered by the snapshot.
        executions: usize,
    },
    /// `trace_quarantined(quarantined)`.
    TraceQuarantined {
        /// The forfeited schedule prefix and divergence details.
        quarantined: QuarantinedTrace,
    },
    /// `cache_hit(count)`.
    CacheHit {
        /// Work items pruned by the fingerprint cache.
        count: usize,
    },
    /// `cache_store(count)`.
    CacheStore {
        /// New subtree entries recorded in the fingerprint cache.
        count: usize,
    },
    /// `bound_certified(bound)`.
    BoundCertified {
        /// The certified preemption bound (`None` = exhaustive).
        bound: Option<usize>,
    },
    /// `metrics_snapshot(snapshot)`.
    MetricsSnapshot {
        /// The registry's counters at the snapshot instant.
        snapshot: MetricsSnapshot,
    },
    /// `search_aborted(reason)`.
    SearchAborted {
        /// Why the search stopped early.
        reason: AbortReason,
    },
    /// `search_finished(report)`.
    SearchFinished {
        /// The final report.
        report: SearchReport,
    },
}

impl Event {
    /// Short kebab-case tag naming the event kind (the same tags
    /// [`JsonlSink`](crate::JsonlSink) writes in its `"event"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SearchStarted { .. } => "search-started",
            Event::ExecutionStarted { .. } => "execution-started",
            Event::ExecutionFinished { .. } => "execution-finished",
            Event::BoundStarted { .. } => "bound-started",
            Event::BoundCompleted { .. } => "bound-completed",
            Event::BugFound { .. } => "bug-found",
            Event::WorkItemDeferred { .. } => "work-item-deferred",
            Event::WorkQueueDepth { .. } => "work-queue-depth",
            Event::RaceDetected { .. } => "race-detected",
            Event::ChoicePoint { .. } => "choice-point",
            Event::PreemptionTaken { .. } => "preemption-taken",
            Event::FaultInjected { .. } => "fault-injected",
            Event::WorkerPanic { .. } => "worker-panic",
            Event::PhaseTime { .. } => "phase-time",
            Event::SearchResumed { .. } => "search-resumed",
            Event::CheckpointWritten { .. } => "checkpoint-written",
            Event::TraceQuarantined { .. } => "trace-quarantined",
            Event::CacheHit { .. } => "cache-hit",
            Event::CacheStore { .. } => "cache-store",
            Event::BoundCertified { .. } => "bound-certified",
            Event::MetricsSnapshot { .. } => "metrics-snapshot",
            Event::SearchAborted { .. } => "search-aborted",
            Event::SearchFinished { .. } => "search-finished",
        }
    }
}

/// Records the full event stream in memory.
///
/// Used by the test suite to assert the observer event grammar; also
/// convenient for ad-hoc tooling that wants to replay or inspect a
/// search after the fact.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl SearchObserver for EventLog {
    fn search_started(&mut self, strategy: &str) {
        self.events.push(Event::SearchStarted {
            strategy: strategy.to_string(),
        });
    }

    fn execution_started(&mut self, index: usize) {
        self.events.push(Event::ExecutionStarted { index });
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        self.events.push(Event::ExecutionFinished {
            index,
            stats: *stats,
            outcome: outcome.clone(),
            distinct_states,
        });
    }

    fn bound_started(&mut self, bound: usize, work_items: usize) {
        self.events.push(Event::BoundStarted { bound, work_items });
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        self.events.push(Event::BoundCompleted {
            stats: *stats,
            wall_time,
        });
    }

    fn bug_found(&mut self, bug: &BugReport) {
        self.events.push(Event::BugFound { bug: bug.clone() });
    }

    fn work_item_deferred(&mut self, next_bound: usize) {
        self.events.push(Event::WorkItemDeferred { next_bound });
    }

    fn work_queue_depth(&mut self, depth: usize) {
        self.events.push(Event::WorkQueueDepth { depth });
    }

    fn race_detected(&mut self, description: &str) {
        self.events.push(Event::RaceDetected {
            description: description.to_string(),
        });
    }

    fn wants_choice_points(&self) -> bool {
        true
    }

    fn wants_phase_timing(&self) -> bool {
        true
    }

    fn choice_point(&mut self, site: SiteId, bound: usize, kind: ChoiceKind) {
        self.events.push(Event::ChoicePoint { site, bound, kind });
    }

    fn preemption_taken(&mut self, site: SiteId) {
        self.events.push(Event::PreemptionTaken { site });
    }

    fn fault_injected(&mut self, site: SiteId, step: usize) {
        self.events.push(Event::FaultInjected { site, step });
    }

    fn worker_panic(&mut self, worker: usize, message: &str) {
        self.events.push(Event::WorkerPanic {
            worker,
            message: message.to_string(),
        });
    }

    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
        self.events.push(Event::PhaseTime { phase, elapsed });
    }

    fn search_resumed(&mut self, info: &ResumeInfo) {
        self.events.push(Event::SearchResumed { info: *info });
    }

    fn checkpoint_written(&mut self, executions: usize) {
        self.events.push(Event::CheckpointWritten { executions });
    }

    fn trace_quarantined(&mut self, quarantined: &QuarantinedTrace) {
        self.events.push(Event::TraceQuarantined {
            quarantined: quarantined.clone(),
        });
    }

    fn cache_hit(&mut self, count: usize) {
        self.events.push(Event::CacheHit { count });
    }

    fn cache_store(&mut self, count: usize) {
        self.events.push(Event::CacheStore { count });
    }

    fn bound_certified(&mut self, bound: Option<usize>) {
        self.events.push(Event::BoundCertified { bound });
    }

    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        self.events.push(Event::MetricsSnapshot {
            snapshot: snapshot.clone(),
        });
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        self.events.push(Event::SearchAborted { reason });
    }

    fn search_finished(&mut self, report: &SearchReport) {
        self.events.push(Event::SearchFinished {
            report: report.clone(),
        });
    }
}
