//! Event-grammar tests: the invariants documented on
//! [`SearchObserver`](icb_core::SearchObserver) hold for real searches,
//! as recorded by an [`EventLog`].

use icb_core::search::{Search, SearchConfig, Strategy};
use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, SchedulePoint, Scheduler, SiteId,
    StateSink, Tid, Trace, TraceEntry,
};
use icb_telemetry::{Event, EventLog, MultiObserver};

/// Two threads of two steps each. When `buggy`, every execution whose
/// first step belongs to thread 1 fails an assertion — three of the six
/// schedules, so bug caps and counters are exercised.
struct TwoByTwo {
    buggy: bool,
}

impl ControlledProgram for TwoByTwo {
    fn execute(&self, scheduler: &mut dyn Scheduler, _sink: &mut dyn StateSink) -> ExecutionResult {
        let mut left = [2usize, 2];
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        let mut first: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..2).filter(|&i| left[i] > 0).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|c| left[c.index()] > 0);
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            let site = SiteId::at(chosen.index() as u32, "step", left[chosen.index()] as u32);
            trace.push(
                TraceEntry::new(chosen, enabled, current, current_enabled, false).with_site(site),
            );
            left[chosen.index()] -= 1;
            first.get_or_insert(chosen);
            current = Some(chosen);
        }
        let outcome = if self.buggy && first == Some(Tid(1)) {
            ExecutionOutcome::AssertionFailure {
                thread: Tid(1),
                message: "thread 1 ran first".to_string(),
            }
        } else {
            ExecutionOutcome::Terminated
        };
        ExecutionResult::from_trace(outcome, trace)
    }
}

/// Replays an event log against the grammar: `search-started` first,
/// `search-finished` last, every `execution-started` paired with the
/// matching `execution-finished`, indices 1-based and consecutive.
fn check_execution_pairing(log: &EventLog) {
    let events = log.events();
    assert!(matches!(events.first(), Some(Event::SearchStarted { .. })));
    assert!(matches!(events.last(), Some(Event::SearchFinished { .. })));
    let mut open: Option<usize> = None;
    let mut finished = 0usize;
    for event in events {
        match event {
            Event::ExecutionStarted { index } => {
                assert_eq!(open, None, "execution {index} started while one is open");
                assert_eq!(*index, finished + 1, "indices are 1-based and consecutive");
                open = Some(*index);
            }
            Event::ExecutionFinished { index, .. } => {
                assert_eq!(open, Some(*index), "finish pairs with the open start");
                open = None;
                finished += 1;
            }
            _ => {}
        }
    }
    assert_eq!(open, None, "no execution left open at search end");
}

fn final_report(log: &EventLog) -> &icb_core::search::SearchReport {
    match log.events().last() {
        Some(Event::SearchFinished { report }) => report,
        other => panic!("expected search-finished last, got {other:?}"),
    }
}

#[test]
fn icb_events_pair_and_count() {
    let mut log = EventLog::new();
    let program = TwoByTwo { buggy: false };
    let report = Search::over(&program)
        .config(SearchConfig::default())
        .observer(&mut log)
        .run()
        .unwrap();
    check_execution_pairing(&log);
    let starts = log
        .events()
        .iter()
        .filter(|e| matches!(e, Event::ExecutionStarted { .. }))
        .count();
    assert_eq!(starts, report.executions);
    assert_eq!(final_report(&log).executions, report.executions);
}

#[test]
fn dfs_events_pair_too() {
    let mut log = EventLog::new();
    let program = TwoByTwo { buggy: true };
    let report = Search::over(&program)
        .strategy(Strategy::Dfs)
        .config(SearchConfig::default())
        .observer(&mut log)
        .run()
        .unwrap();
    check_execution_pairing(&log);
    assert_eq!(report.executions, 6);
    assert_eq!(report.buggy_executions, 3);
}

/// `bound-completed` events carry exactly the rows of the final
/// `SearchReport::bound_stats`, in increasing bound order.
#[test]
fn bound_completed_matches_bound_stats() {
    let mut log = EventLog::new();
    let program = TwoByTwo { buggy: true };
    let report = Search::over(&program)
        .config(SearchConfig::default())
        .observer(&mut log)
        .run()
        .unwrap();
    let from_events: Vec<_> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::BoundCompleted { stats, .. } => Some(*stats),
            _ => None,
        })
        .collect();
    assert_eq!(from_events, report.bound_stats());
    assert!(
        from_events.windows(2).all(|w| w[0].bound < w[1].bound),
        "bounds strictly increase"
    );
    assert_eq!(
        from_events.iter().map(|s| s.executions).sum::<usize>(),
        report.executions,
        "per-bound executions sum to the total"
    );
}

/// `bug-found` fires once per *recorded* report: all buggy executions
/// when under the cap, exactly `max_bug_reports` when over it, and once
/// under `stop_on_first_bug`.
#[test]
fn bug_found_respects_the_report_cap() {
    let bug_events = |config: SearchConfig| {
        let mut log = EventLog::new();
        let program = TwoByTwo { buggy: true };
        let report = Search::over(&program)
            .config(config)
            .observer(&mut log)
            .run()
            .unwrap();
        let fired = log
            .events()
            .iter()
            .filter(|e| matches!(e, Event::BugFound { .. }))
            .count();
        assert_eq!(fired, report.bugs.len());
        (fired, report)
    };

    let (fired, report) = bug_events(SearchConfig::default());
    assert_eq!(report.buggy_executions, 3);
    assert_eq!(fired, 3);

    let (fired, report) = bug_events(SearchConfig {
        max_bug_reports: 2,
        ..SearchConfig::default()
    });
    assert_eq!(report.buggy_executions, 3);
    assert_eq!(fired, 2, "capped at max_bug_reports");

    let (fired, report) = bug_events(SearchConfig {
        stop_on_first_bug: true,
        ..SearchConfig::default()
    });
    assert_eq!(fired, 1);
    assert!(report.buggy_executions >= 1);
}

/// Attributed events are batched per execution: every `choice-point` and
/// `preemption-taken` falls between an `execution-started` and its
/// `execution-finished`, with one choice point per step and one
/// preemption-taken per counted preemption.
fn check_choice_point_batching(log: &EventLog, name: &str) {
    let mut open = false;
    let mut choices = 0usize;
    let mut preemptions = 0usize;
    let mut saw_any = false;
    for event in log.events() {
        match event {
            Event::ExecutionStarted { .. } => {
                open = true;
                choices = 0;
                preemptions = 0;
            }
            Event::ChoicePoint { site, .. } => {
                assert!(open, "{name}: choice-point outside an execution");
                assert!(!site.is_unknown(), "{name}: host resolved the site");
                choices += 1;
                saw_any = true;
            }
            Event::PreemptionTaken { site } => {
                assert!(open, "{name}: preemption-taken outside an execution");
                assert!(!site.is_unknown(), "{name}: victim site resolved");
                preemptions += 1;
            }
            Event::ExecutionFinished { stats, .. } => {
                assert!(open, "{name}: finish without start");
                assert_eq!(choices, stats.steps, "{name}: one choice-point per step");
                assert_eq!(
                    preemptions, stats.preemptions,
                    "{name}: preemption-taken mirrors the preemption count"
                );
                open = false;
            }
            _ => {}
        }
    }
    assert!(saw_any, "{name}: attributed events were emitted");
}

/// `MultiObserver` fan-out delivers the identical, identically-ordered
/// event stream to every member, under all five search strategies — and
/// the attributed events obey the per-execution batching grammar in each.
#[test]
fn multi_observer_fans_out_identically_under_every_strategy() {
    let budget = SearchConfig {
        max_executions: Some(40),
        ..SearchConfig::default()
    };
    let strategies: Vec<(&str, Strategy, SearchConfig)> = vec![
        ("icb", Strategy::Icb, SearchConfig::default()),
        ("dfs", Strategy::Dfs, SearchConfig::default()),
        (
            "idfs",
            Strategy::IterativeDeepening {
                start: 2,
                step: 2,
                max: 6,
            },
            SearchConfig::default(),
        ),
        ("random", Strategy::Random { seed: 0x1cb }, budget),
        ("best-first", Strategy::BestFirst, SearchConfig::default()),
    ];
    for (name, strategy, config) in strategies {
        let mut a = EventLog::new();
        let mut b = EventLog::new();
        let mut multi = MultiObserver::new().with(&mut a).with(&mut b);
        let program = TwoByTwo { buggy: true };
        Search::over(&program)
            .strategy(strategy)
            .config(config)
            .observer(&mut multi)
            .run()
            .unwrap();
        drop(multi);
        assert_eq!(a.events().len(), b.events().len(), "{name}: equal length");
        assert!(!a.events().is_empty(), "{name}: events were recorded");
        for (ea, eb) in a.events().iter().zip(b.events()) {
            assert_eq!(ea.kind(), eb.kind(), "{name}: same order in both logs");
        }
        check_choice_point_batching(&a, name);
        check_choice_point_batching(&b, name);
    }
}

/// Aborting on the first bug emits `search-aborted` exactly once, after
/// the `bug-found` and before `search-finished`.
#[test]
fn abort_is_emitted_once_and_ordered() {
    let mut log = EventLog::new();
    let program = TwoByTwo { buggy: true };
    Search::over(&program)
        .config(SearchConfig {
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .observer(&mut log)
        .run()
        .unwrap();
    let positions: Vec<usize> = log
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::SearchAborted { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(positions.len(), 1, "aborted exactly once");
    let bug_at = log
        .events()
        .iter()
        .position(|e| matches!(e, Event::BugFound { .. }))
        .expect("a bug is found");
    assert!(bug_at < positions[0]);
    // Only bound/queue bookkeeping for the current bound may follow the
    // abort — never another execution or bug.
    for event in &log.events()[positions[0] + 1..log.events().len() - 1] {
        assert!(
            matches!(
                event,
                Event::BoundCompleted { .. } | Event::WorkQueueDepth { .. }
            ),
            "unexpected event after abort: {event:?}"
        );
    }
}
