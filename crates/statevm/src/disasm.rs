//! Disassembly of models — debugging aid for the builder DSL.
//!
//! The builder's emitted instruction streams are not otherwise visible;
//! [`Model::disasm`] renders them with resolved names, and
//! [`Model::stats`] summarizes the shape the search will face.

use std::fmt::Write as _;

use crate::instr::Instr;
use crate::model::Model;

/// Aggregate shape of a model, as the searches see it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelStats {
    /// Number of threads (`n`).
    pub threads: usize,
    /// Shared instructions across all threads (upper bound on `n·k`).
    pub shared_instructions: usize,
    /// Potentially blocking shared instructions (upper bound on `n·b`).
    pub blocking_instructions: usize,
    /// Local (invisible) instructions.
    pub local_instructions: usize,
    /// Global scalars.
    pub globals: usize,
    /// Global arrays.
    pub arrays: usize,
    /// Locks.
    pub locks: usize,
}

impl Model {
    /// Summarizes the model's static shape.
    pub fn stats(&self) -> ModelStats {
        let mut shared = 0;
        let mut blocking = 0;
        let mut local = 0;
        for t in &self.threads {
            for i in &t.code {
                if i.is_shared() {
                    shared += 1;
                    if i.is_blocking() {
                        blocking += 1;
                    }
                } else {
                    local += 1;
                }
            }
        }
        ModelStats {
            threads: self.threads.len(),
            shared_instructions: shared,
            blocking_instructions: blocking,
            local_instructions: local,
            globals: self.globals.len(),
            arrays: self.arrays.len(),
            locks: self.locks,
        }
    }

    /// Renders the full program listing with named globals and arrays.
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; {} globals, {} arrays, {} locks",
            self.globals.len(),
            self.arrays.len(),
            self.locks
        );
        for (i, (name, init)) in self.global_names.iter().zip(&self.globals).enumerate() {
            let _ = writeln!(out, "global g{i} \"{name}\" = {init}");
        }
        for (i, (name, init)) in self.array_names.iter().zip(&self.arrays).enumerate() {
            let _ = writeln!(out, "array a{i} \"{name}\" = {init:?}");
        }
        for thread in &self.threads {
            let _ = writeln!(
                out,
                "\nthread \"{}\" ({} locals):",
                thread.name, thread.locals
            );
            for (pc, instr) in thread.code.iter().enumerate() {
                let marker = if instr.is_shared() {
                    if instr.is_blocking() {
                        "B"
                    } else {
                        "S"
                    }
                } else {
                    " "
                };
                let _ = writeln!(out, "  {pc:>3} {marker} {}", self.render_instr(instr));
            }
        }
        out
    }

    fn render_instr(&self, instr: &Instr) -> String {
        let g = |ix: usize| format!("g{ix}:{}", self.global_names[ix]);
        let a = |ix: usize| format!("a{ix}:{}", self.array_names[ix]);
        match instr {
            Instr::LoadGlobal { global, dst } => {
                format!("load   l{} <- {}", dst.index(), g(global.index()))
            }
            Instr::StoreGlobal { global, src } => {
                format!("store  {} <- {src}", g(global.index()))
            }
            Instr::LoadArr { arr, idx, dst } => {
                format!("load   l{} <- {}[{idx}]", dst.index(), a(arr.index()))
            }
            Instr::StoreArr { arr, idx, src } => {
                format!("store  {}[{idx}] <- {src}", a(arr.index()))
            }
            Instr::Acquire { lock } => format!("acq    lock[{lock}]"),
            Instr::Release { lock } => format!("rel    lock[{lock}]"),
            Instr::Rmw {
                global,
                op,
                rhs,
                dst,
            } => format!(
                "rmw    l{} <- {} {op:?}= {rhs}",
                dst.index(),
                g(global.index())
            ),
            Instr::Cas {
                global,
                expected,
                new,
                dst,
            } => format!(
                "cas    l{} <- {} ({expected} -> {new})",
                dst.index(),
                g(global.index())
            ),
            Instr::BlockUntil { global, pred } => {
                format!("wait   {} {pred:?}", g(global.index()))
            }
            Instr::Yield => "yield".to_string(),
            Instr::FailPoint { name, dst } => {
                format!("failpt l{} <- \"{name}\"", dst.index())
            }
            Instr::Compute { dst, expr } => format!("let    l{} <- {expr}", dst.index()),
            Instr::Jump { target } => format!("jmp    {target}"),
            Instr::JumpIf { cond, target } => format!("jif    {cond} -> {target}"),
            Instr::Assert { cond, msg } => format!("assert {cond} \"{msg}\""),
            Instr::Halt => "halt".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    fn sample() -> Model {
        let mut m = ModelBuilder::new();
        let g = m.global("counter", 0);
        let arr = m.array("buf", vec![0, 0]);
        let l = m.lock("m");
        m.thread("worker", |t| {
            let v = t.local();
            t.acquire(l);
            t.load(g, v);
            t.store_arr(arr, 0, v + 1);
            t.assert(v.ge(0), "nonnegative");
            t.release(l);
        });
        m.build()
    }

    #[test]
    fn stats_count_instruction_classes() {
        let s = sample().stats();
        assert_eq!(s.threads, 1);
        assert_eq!(s.shared_instructions, 4); // acq, load, store_arr, rel
        assert_eq!(s.blocking_instructions, 1); // acq
        assert_eq!(s.local_instructions, 1); // assert
        assert_eq!(s.globals, 1);
        assert_eq!(s.arrays, 1);
        assert_eq!(s.locks, 1);
    }

    #[test]
    fn disassembly_names_everything() {
        let text = sample().disasm();
        assert!(text.contains("global g0 \"counter\" = 0"), "{text}");
        assert!(text.contains("thread \"worker\""), "{text}");
        assert!(text.contains("acq    lock[0]"), "{text}");
        assert!(text.contains("g0:counter"), "{text}");
        assert!(text.contains("assert"), "{text}");
        // Shared/blocking markers present.
        assert!(text.contains(" B acq"), "{text}");
        assert!(text.contains(" S load"), "{text}");
    }

    #[test]
    fn disassembly_of_benchmarks_renders() {
        // Smoke-test over a realistic model: no panics, plausible size.
        let mut m = ModelBuilder::new();
        let g = m.global("x", 0);
        for _ in 0..2 {
            m.thread("t", |t| {
                let v = t.local();
                let top = t.new_label();
                t.compute(v, 0);
                t.place(top);
                t.fetch_add(g, 1, v);
                t.jump_if(v.lt(2), top);
            });
        }
        let model = m.build();
        let text = model.disasm();
        assert!(text.lines().count() > 10);
        assert!(text.contains("jif"));
        assert!(text.contains("rmw"));
    }
}
