//! An explicit-state concurrent VM with state-caching model checking —
//! the paper's ZING analog.
//!
//! Models are closed concurrent programs over global scalars, arrays and
//! locks, with a fixed set of threads; each *step* performs exactly one
//! shared-variable access (Section 2's execution model). Because states
//! are concrete and hashable, this checker offers what the stateless
//! runtime cannot:
//!
//! * **exact distinct-state counting** — the coverage metric of every
//!   figure in the paper;
//! * **state caching** — the `table` extension of Algorithm 1, pruning
//!   revisits across and within preemption bounds;
//! * **exhaustive reachability** ([`reachable_states`]) — the
//!   denominator of the "% state space covered" plots.
//!
//! Models also implement
//! [`ControlledProgram`](icb_core::ControlledProgram), so every stateless
//! search strategy runs on them unchanged; the test suites cross-validate
//! the two checkers against each other.
//!
//! # Example
//!
//! ```
//! use icb_statevm::{ModelBuilder, ExplicitIcb, ExplicitConfig};
//!
//! // Flag-based mutual exclusion: each thread raises its flag, then
//! // enters only if the other's flag is down.
//! let mut m = ModelBuilder::new();
//! let flag0 = m.global("flag0", 0);
//! let flag1 = m.global("flag1", 0);
//! let critical = m.global("critical", 0);
//! m.thread("t0", |t| {
//!     let seen = t.local();
//!     let c = t.local();
//!     t.store(flag0, 1);
//!     t.load(flag1, seen);
//!     let skip = t.new_label();
//!     t.jump_if(seen.eq(1), skip);
//!     t.fetch_add(critical, 1, c);
//!     t.assert(c.eq(0), "mutual exclusion violated");
//!     t.fetch_sub(critical, 1, c);
//!     t.place(skip);
//! });
//! m.thread("t1", |t| {
//!     let seen = t.local();
//!     let c = t.local();
//!     t.store(flag1, 1);
//!     t.load(flag0, seen);
//!     let skip = t.new_label();
//!     t.jump_if(seen.eq(1), skip);
//!     t.fetch_add(critical, 1, c);
//!     t.assert(c.eq(0), "mutual exclusion violated");
//!     t.fetch_sub(critical, 1, c);
//!     t.place(skip);
//! });
//! let model = m.build();
//!
//! // This protocol is safe under sequential consistency (each thread
//! // sets its flag before checking the other's), so the checker proves
//! // mutual exclusion over the full state space.
//! let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
//! assert!(report.completed);
//! assert!(report.bugs.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adapter;
mod builder;
mod disasm;
mod explicit;
mod expr;
mod instr;
mod model;
pub mod por;

pub use builder::{Label, ModelBuilder, ThreadBuilder};
pub use disasm::ModelStats;
pub use explicit::{
    reachable_states, ExplicitBoundStats, ExplicitBug, ExplicitConfig, ExplicitIcb, ExplicitReport,
};
pub use expr::{Expr, Local};
pub use instr::{ArrayVar, BlockPred, Global, Instr, Lock, LockArray, RmwOp};
pub use model::{Model, StepError, ThreadCode, ThreadState, VmState};
