//! The VM's instruction set.
//!
//! Instructions split into *shared* instructions (exactly one
//! shared-variable access each — the paper's notion of a step) and
//! *local* instructions (pure control flow and computation, executed
//! greedily as part of the surrounding step).

use crate::expr::{Expr, Local};

/// Handle to a global scalar variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Global(pub(crate) usize);

impl Global {
    /// The global's index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a global array variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayVar(pub(crate) usize);

impl ArrayVar {
    /// The array's index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a single lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lock(pub(crate) usize);

impl Lock {
    /// The lock's index in the model's lock table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a contiguous range of locks, indexable by an expression
/// (per-inode locks, per-bucket locks, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LockArray {
    pub(crate) base: usize,
    pub(crate) len: usize,
}

impl LockArray {
    /// Number of locks in the range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Read-modify-write operators for [`Instr::Rmw`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `global += rhs`.
    Add,
    /// `global -= rhs`.
    Sub,
    /// `global = rhs` (an atomic exchange; the old value still lands in
    /// `dst`).
    Xchg,
}

/// Blocking predicates for [`Instr::BlockUntil`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockPred {
    /// Enabled while the global is nonzero (event wait).
    NonZero,
    /// Enabled while the global is zero.
    Zero,
    /// Enabled while the global equals the given value.
    Eq(i64),
}

/// One VM instruction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    // ---- shared instructions (one step each) ----
    /// `dst := global`.
    LoadGlobal {
        /// Source global.
        global: Global,
        /// Destination local.
        dst: Local,
    },
    /// `global := src`.
    StoreGlobal {
        /// Destination global.
        global: Global,
        /// Value expression (over locals).
        src: Expr,
    },
    /// `dst := array[idx]`.
    LoadArr {
        /// Source array.
        arr: ArrayVar,
        /// Index expression.
        idx: Expr,
        /// Destination local.
        dst: Local,
    },
    /// `array[idx] := src`.
    StoreArr {
        /// Destination array.
        arr: ArrayVar,
        /// Index expression.
        idx: Expr,
        /// Value expression.
        src: Expr,
    },
    /// Acquire the lock at `base + idx`; blocks while held.
    Acquire {
        /// Lock index expression (into the model's flat lock table).
        lock: Expr,
    },
    /// Release the lock at `base + idx`.
    ///
    /// The executing thread must hold it (model bug otherwise).
    Release {
        /// Lock index expression.
        lock: Expr,
    },
    /// Atomically `dst := global; global := op(global, rhs)`.
    Rmw {
        /// The shared variable.
        global: Global,
        /// The operator.
        op: RmwOp,
        /// Right-hand side (over locals).
        rhs: Expr,
        /// Receives the previous value.
        dst: Local,
    },
    /// Atomic compare-and-swap: if `global == expected` then
    /// `global := new, dst := 1` else `dst := 0`.
    Cas {
        /// The shared variable.
        global: Global,
        /// Expected value.
        expected: Expr,
        /// Replacement value.
        new: Expr,
        /// Receives 1 on success, 0 on failure.
        dst: Local,
    },
    /// Block until the predicate holds on the global, then read it (one
    /// shared access). Models events / join flags.
    BlockUntil {
        /// The shared variable.
        global: Global,
        /// When the thread becomes enabled.
        pred: BlockPred,
    },
    /// A shared no-op: a scheduling point without a variable access
    /// (models a syscall boundary / explicit yield).
    Yield,
    /// A designated fallible site (one step): `dst := 1` if the search
    /// injects a fault here, else `dst := 0`. The bytecode analog of
    /// `icb_runtime::fail_point` — under a fault bound the scheduler
    /// explores both outcomes.
    FailPoint {
        /// Site name, for disassembly and reports.
        name: String,
        /// Receives 1 (fault injected) or 0.
        dst: Local,
    },

    // ---- local instructions (invisible) ----
    /// `dst := expr` over locals only.
    Compute {
        /// Destination local.
        dst: Local,
        /// Pure expression.
        expr: Expr,
    },
    /// Unconditional branch.
    Jump {
        /// Target pc.
        target: usize,
    },
    /// Branch if `cond != 0`.
    JumpIf {
        /// Condition over locals.
        cond: Expr,
        /// Target pc.
        target: usize,
    },
    /// Fail the execution if `cond == 0`.
    Assert {
        /// Condition over locals.
        cond: Expr,
        /// Failure message.
        msg: String,
    },
    /// Terminate the thread.
    Halt,
}

impl Instr {
    /// Is this a shared instruction (i.e. its execution is one step)?
    pub fn is_shared(&self) -> bool {
        !matches!(
            self,
            Instr::Compute { .. }
                | Instr::Jump { .. }
                | Instr::JumpIf { .. }
                | Instr::Assert { .. }
                | Instr::Halt
        )
    }

    /// Is this a potentially blocking shared instruction (the paper's
    /// `B`)?
    pub fn is_blocking(&self) -> bool {
        matches!(self, Instr::Acquire { .. } | Instr::BlockUntil { .. })
    }

    /// Is this a designated fallible instruction — one whose step
    /// consults the scheduler's fault decision?
    pub fn is_fallible(&self) -> bool {
        matches!(self, Instr::FailPoint { .. })
    }

    /// A short static name for the instruction, used as the class of
    /// profiler [`SiteId`](icb_core::SiteId)s.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::LoadGlobal { .. } => "load",
            Instr::StoreGlobal { .. } => "store",
            Instr::LoadArr { .. } => "load-arr",
            Instr::StoreArr { .. } => "store-arr",
            Instr::Acquire { .. } => "acquire",
            Instr::Release { .. } => "release",
            Instr::Rmw { .. } => "rmw",
            Instr::Cas { .. } => "cas",
            Instr::BlockUntil { .. } => "block-until",
            Instr::Yield => "yield",
            Instr::FailPoint { .. } => "fail-point",
            Instr::Compute { .. } => "compute",
            Instr::Jump { .. } => "jump",
            Instr::JumpIf { .. } => "jump-if",
            Instr::Assert { .. } => "assert",
            Instr::Halt => "halt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_classification() {
        assert!(Instr::Yield.is_shared());
        assert!(Instr::LoadGlobal {
            global: Global(0),
            dst: Local(0)
        }
        .is_shared());
        assert!(!Instr::Halt.is_shared());
        assert!(!Instr::Jump { target: 0 }.is_shared());
    }

    #[test]
    fn blocking_classification() {
        assert!(Instr::Acquire {
            lock: Expr::konst(0)
        }
        .is_blocking());
        assert!(Instr::BlockUntil {
            global: Global(0),
            pred: BlockPred::NonZero
        }
        .is_blocking());
        assert!(!Instr::Yield.is_blocking());
        assert!(!Instr::Release {
            lock: Expr::konst(0)
        }
        .is_blocking());
    }
}
