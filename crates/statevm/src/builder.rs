//! A builder DSL for writing models readably.
//!
//! # Examples
//!
//! A two-thread increment race (the canonical lost update):
//!
//! ```
//! use icb_statevm::ModelBuilder;
//!
//! let mut m = ModelBuilder::new();
//! let counter = m.global("counter", 0);
//! let done = m.global("done", 0);
//! for _ in 0..2 {
//!     m.thread("incrementer", |t| {
//!         let tmp = t.local();
//!         t.load(counter, tmp);          // read
//!         t.store(counter, tmp + 1);     // write — racy interleavings lose updates
//!         t.fetch_add(done, 1, tmp);     // signal completion
//!     });
//! }
//! m.thread("checker", |t| {
//!     let v = t.local();
//!     t.wait_eq(done, 2);                // join both incrementers
//!     t.load(counter, v);
//!     t.assert(v.eq(2), "lost update");
//! });
//! let model = m.build();
//! assert_eq!(model.thread_count(), 3);
//! ```

use crate::expr::{Expr, Local};
use crate::instr::{ArrayVar, BlockPred, Global, Instr, Lock, LockArray, RmwOp};
use crate::model::{Model, ThreadCode};

/// Builds a [`Model`] incrementally.
#[derive(Debug, Default)]
pub struct ModelBuilder {
    globals: Vec<i64>,
    global_names: Vec<String>,
    arrays: Vec<Vec<i64>>,
    array_names: Vec<String>,
    locks: usize,
    threads: Vec<ThreadCode>,
    max_steps: usize,
}

impl ModelBuilder {
    /// Creates an empty model.
    pub fn new() -> Self {
        ModelBuilder {
            max_steps: 100_000,
            ..ModelBuilder::default()
        }
    }

    /// Declares a global scalar with an initial value.
    pub fn global(&mut self, name: &str, init: i64) -> Global {
        self.globals.push(init);
        self.global_names.push(name.to_string());
        Global(self.globals.len() - 1)
    }

    /// Declares a global array with initial contents.
    pub fn array(&mut self, name: &str, init: Vec<i64>) -> ArrayVar {
        self.arrays.push(init);
        self.array_names.push(name.to_string());
        ArrayVar(self.arrays.len() - 1)
    }

    /// Declares a lock.
    pub fn lock(&mut self, _name: &str) -> Lock {
        self.locks += 1;
        Lock(self.locks - 1)
    }

    /// Declares `len` locks indexable by expression (per-bucket locks,
    /// per-inode locks, …).
    pub fn lock_array(&mut self, _name: &str, len: usize) -> LockArray {
        let base = self.locks;
        self.locks += len;
        LockArray { base, len }
    }

    /// Declares a thread; `build` receives its [`ThreadBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if the thread leaves a label unplaced.
    pub fn thread(&mut self, name: &str, build: impl FnOnce(&mut ThreadBuilder)) {
        let mut t = ThreadBuilder {
            code: Vec::new(),
            locals: 0,
            labels: Vec::new(),
            fixups: Vec::new(),
        };
        build(&mut t);
        let code = t.finish(name);
        self.threads.push(ThreadCode {
            name: name.to_string(),
            code,
            locals: t.locals,
        });
    }

    /// Overrides the stateless per-execution step budget (default
    /// 100 000).
    pub fn max_steps(&mut self, max_steps: usize) -> &mut Self {
        self.max_steps = max_steps;
        self
    }

    /// Finalizes the model, validating every instruction: jump targets
    /// in range, local slots within the thread's allocation, global and
    /// array ids within the model, and constant lock indices within the
    /// lock table (dynamic lock indices are checked at execution time).
    ///
    /// # Panics
    ///
    /// Panics if no thread was declared or any validation fails, naming
    /// the offending thread and pc.
    pub fn build(self) -> Model {
        assert!(
            !self.threads.is_empty(),
            "a model needs at least one thread"
        );
        for thread in &self.threads {
            validate_thread(thread, self.globals.len(), self.arrays.len(), self.locks);
        }
        Model {
            globals: self.globals,
            global_names: self.global_names,
            arrays: self.arrays,
            array_names: self.array_names,
            locks: self.locks,
            threads: self.threads,
            max_steps: self.max_steps,
        }
    }
}

/// A forward-referenceable code position within one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

/// Emits one thread's instructions.
#[derive(Debug)]
pub struct ThreadBuilder {
    code: Vec<Instr>,
    locals: usize,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl ThreadBuilder {
    /// Allocates a fresh local slot (initialized to 0).
    pub fn local(&mut self) -> Local {
        self.locals += 1;
        Local(self.locals - 1)
    }

    /// Emits `dst := global` (one step).
    pub fn load(&mut self, global: Global, dst: Local) {
        self.code.push(Instr::LoadGlobal { global, dst });
    }

    /// Emits `global := src` (one step).
    pub fn store(&mut self, global: Global, src: impl Into<Expr>) {
        self.code.push(Instr::StoreGlobal {
            global,
            src: src.into(),
        });
    }

    /// Emits `dst := arr[idx]` (one step).
    pub fn load_arr(&mut self, arr: ArrayVar, idx: impl Into<Expr>, dst: Local) {
        self.code.push(Instr::LoadArr {
            arr,
            idx: idx.into(),
            dst,
        });
    }

    /// Emits `arr[idx] := src` (one step).
    pub fn store_arr(&mut self, arr: ArrayVar, idx: impl Into<Expr>, src: impl Into<Expr>) {
        self.code.push(Instr::StoreArr {
            arr,
            idx: idx.into(),
            src: src.into(),
        });
    }

    /// Emits a blocking acquire of `lock` (one step).
    pub fn acquire(&mut self, lock: Lock) {
        self.code.push(Instr::Acquire {
            lock: Expr::konst(lock.index() as i64),
        });
    }

    /// Emits a blocking acquire of `locks[idx]` (one step).
    pub fn acquire_idx(&mut self, locks: LockArray, idx: impl Into<Expr>) {
        self.code.push(Instr::Acquire {
            lock: Expr::konst(locks.base as i64) + idx.into(),
        });
    }

    /// Emits a release of `lock` (one step).
    pub fn release(&mut self, lock: Lock) {
        self.code.push(Instr::Release {
            lock: Expr::konst(lock.index() as i64),
        });
    }

    /// Emits a release of `locks[idx]` (one step).
    pub fn release_idx(&mut self, locks: LockArray, idx: impl Into<Expr>) {
        self.code.push(Instr::Release {
            lock: Expr::konst(locks.base as i64) + idx.into(),
        });
    }

    /// Emits an atomic `dst := global; global := global + rhs` (one
    /// step).
    pub fn fetch_add(&mut self, global: Global, rhs: impl Into<Expr>, dst: Local) {
        self.code.push(Instr::Rmw {
            global,
            op: RmwOp::Add,
            rhs: rhs.into(),
            dst,
        });
    }

    /// Emits an atomic `dst := global; global := global - rhs` (one
    /// step).
    pub fn fetch_sub(&mut self, global: Global, rhs: impl Into<Expr>, dst: Local) {
        self.code.push(Instr::Rmw {
            global,
            op: RmwOp::Sub,
            rhs: rhs.into(),
            dst,
        });
    }

    /// Emits an atomic exchange `dst := global; global := rhs` (one
    /// step).
    pub fn exchange(&mut self, global: Global, rhs: impl Into<Expr>, dst: Local) {
        self.code.push(Instr::Rmw {
            global,
            op: RmwOp::Xchg,
            rhs: rhs.into(),
            dst,
        });
    }

    /// Emits an atomic compare-and-swap (one step): `dst := 1` and
    /// `global := new` if `global == expected`, else `dst := 0`.
    pub fn cas(
        &mut self,
        global: Global,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
        dst: Local,
    ) {
        self.code.push(Instr::Cas {
            global,
            expected: expected.into(),
            new: new.into(),
            dst,
        });
    }

    /// Emits a blocking wait until `global != 0` (one step) — an event
    /// wait.
    pub fn wait_nonzero(&mut self, global: Global) {
        self.code.push(Instr::BlockUntil {
            global,
            pred: BlockPred::NonZero,
        });
    }

    /// Emits a blocking wait until `global == 0` (one step).
    pub fn wait_zero(&mut self, global: Global) {
        self.code.push(Instr::BlockUntil {
            global,
            pred: BlockPred::Zero,
        });
    }

    /// Emits a blocking wait until `global == value` (one step) — the
    /// idiom for joining on a completion counter.
    pub fn wait_eq(&mut self, global: Global, value: i64) {
        self.code.push(Instr::BlockUntil {
            global,
            pred: BlockPred::Eq(value),
        });
    }

    /// Emits a bare scheduling point (one step).
    pub fn yield_point(&mut self) {
        self.code.push(Instr::Yield);
    }

    /// Emits a designated fallible site (one step): `dst := 1` if the
    /// search injects a fault here, else `dst := 0`. Under a fault
    /// bound the checker explores both outcomes; at fault bound 0 (and
    /// in the explicit-state checker) `dst` is always 0.
    pub fn fail_point(&mut self, name: &str, dst: Local) {
        self.code.push(Instr::FailPoint {
            name: name.to_string(),
            dst,
        });
    }

    /// Emits the local computation `dst := expr` (invisible).
    pub fn compute(&mut self, dst: Local, expr: impl Into<Expr>) {
        self.code.push(Instr::Compute {
            dst,
            expr: expr.into(),
        });
    }

    /// Emits a local assertion (invisible; failing it fails the
    /// execution).
    pub fn assert(&mut self, cond: impl Into<Expr>, msg: &str) {
        self.code.push(Instr::Assert {
            cond: cond.into(),
            msg: msg.to_string(),
        });
    }

    /// Emits thread termination (invisible).
    pub fn halt(&mut self) {
        self.code.push(Instr::Halt);
    }

    /// Creates a label to be [`place`](ThreadBuilder::place)d later.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Places `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.code.len());
    }

    /// Emits an unconditional jump (invisible).
    pub fn jump(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Jump { target: usize::MAX });
    }

    /// Emits a conditional jump (invisible): taken iff `cond != 0`.
    pub fn jump_if(&mut self, cond: impl Into<Expr>, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::JumpIf {
            cond: cond.into(),
            target: usize::MAX,
        });
    }

    /// Emits a conditional jump taken iff `cond == 0`.
    pub fn jump_unless(&mut self, cond: impl Into<Expr>, label: Label) {
        self.jump_if(!cond.into(), label);
    }

    fn finish(&mut self, name: &str) -> Vec<Instr> {
        let mut code = std::mem::take(&mut self.code);
        for (ix, label) in self.fixups.drain(..) {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("thread {name}: unplaced label used at pc {ix}"));
            match &mut code[ix] {
                Instr::Jump { target: t } | Instr::JumpIf { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-jump {other:?}"),
            }
        }
        code
    }
}

/// Static validation of one thread's code (see [`ModelBuilder::build`]).
fn validate_thread(thread: &ThreadCode, globals: usize, arrays: usize, locks: usize) {
    let name = &thread.name;
    let check_local = |l: &Local, pc: usize| {
        assert!(
            l.0 < thread.locals,
            "thread {name}, pc {pc}: local l{} out of range (thread has {})",
            l.0,
            thread.locals
        );
    };
    let check_expr = |e: &Expr, pc: usize| {
        if let Some(max) = e.max_local() {
            assert!(
                max < thread.locals,
                "thread {name}, pc {pc}: expression reads l{max}, thread has {} locals",
                thread.locals
            );
        }
    };
    let check_global = |g: &Global, pc: usize| {
        assert!(
            g.index() < globals,
            "thread {name}, pc {pc}: global g{} out of range",
            g.index()
        );
    };
    let check_arr = |a: &ArrayVar, pc: usize| {
        assert!(
            a.index() < arrays,
            "thread {name}, pc {pc}: array a{} out of range",
            a.index()
        );
    };
    let check_target = |t: usize, pc: usize| {
        assert!(
            t <= thread.code.len(),
            "thread {name}, pc {pc}: jump target {t} beyond code end"
        );
    };
    for (pc, instr) in thread.code.iter().enumerate() {
        match instr {
            Instr::LoadGlobal { global, dst } => {
                check_global(global, pc);
                check_local(dst, pc);
            }
            Instr::StoreGlobal { global, src } => {
                check_global(global, pc);
                check_expr(src, pc);
            }
            Instr::LoadArr { arr, idx, dst } => {
                check_arr(arr, pc);
                check_expr(idx, pc);
                check_local(dst, pc);
            }
            Instr::StoreArr { arr, idx, src } => {
                check_arr(arr, pc);
                check_expr(idx, pc);
                check_expr(src, pc);
            }
            Instr::Acquire { lock } | Instr::Release { lock } => {
                check_expr(lock, pc);
                if let Expr::Const(ix) = lock {
                    assert!(
                        (*ix as usize) < locks,
                        "thread {name}, pc {pc}: lock {ix} out of range ({locks} locks)"
                    );
                }
            }
            Instr::Rmw {
                global, rhs, dst, ..
            } => {
                check_global(global, pc);
                check_expr(rhs, pc);
                check_local(dst, pc);
            }
            Instr::Cas {
                global,
                expected,
                new,
                dst,
            } => {
                check_global(global, pc);
                check_expr(expected, pc);
                check_expr(new, pc);
                check_local(dst, pc);
            }
            Instr::BlockUntil { global, .. } => check_global(global, pc),
            Instr::FailPoint { dst, .. } => check_local(dst, pc),
            Instr::Yield | Instr::Halt => {}
            Instr::Compute { dst, expr } => {
                check_local(dst, pc);
                check_expr(expr, pc);
            }
            Instr::Jump { target } => check_target(*target, pc),
            Instr::JumpIf { cond, target } => {
                check_expr(cond, pc);
                check_target(*target, pc);
            }
            Instr::Assert { cond, .. } => check_expr(cond, pc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::Tid;

    #[test]
    fn counter_model_steps_sequentially() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        m.thread("t", |t| {
            let tmp = t.local();
            t.load(g, tmp);
            t.store(g, tmp + 1);
        });
        let model = m.build();
        let s0 = model.initial_state().unwrap();
        assert!(model.enabled(&s0, Tid(0)));
        let s1 = model.step(&s0, Tid(0)).unwrap();
        let s2 = model.step(&s1, Tid(0)).unwrap();
        assert_eq!(s2.globals[0], 1);
        assert!(model.all_finished(&s2));
        assert!(!model.enabled(&s2, Tid(0)));
    }

    #[test]
    fn labels_and_loops() {
        // Sum 1..=3 into a global using a local loop counter.
        let mut m = ModelBuilder::new();
        let sum = m.global("sum", 0);
        m.thread("summer", |t| {
            let i = t.local();
            let acc = t.local();
            t.compute(i, 1);
            let top = t.new_label();
            let done = t.new_label();
            t.place(top);
            t.jump_if(i.gt(3), done);
            t.compute(acc, acc + i);
            t.store(sum, acc); // one shared access per iteration
            t.compute(i, i + 1);
            t.jump(top);
            t.place(done);
        });
        let model = m.build();
        let mut s = model.initial_state().unwrap();
        while model.enabled(&s, Tid(0)) {
            s = model.step(&s, Tid(0)).unwrap();
        }
        assert_eq!(s.globals[0], 6);
    }

    #[test]
    fn lock_blocks_second_acquirer() {
        let mut m = ModelBuilder::new();
        let l = m.lock("m");
        for _ in 0..2 {
            m.thread("t", |t| {
                t.acquire(l);
                t.release(l);
            });
        }
        let model = m.build();
        let s0 = model.initial_state().unwrap();
        let s1 = model.step(&s0, Tid(0)).unwrap(); // T0 acquires
        assert!(!model.enabled(&s1, Tid(1)));
        assert!(model.enabled(&s1, Tid(0)));
        let s2 = model.step(&s1, Tid(0)).unwrap(); // T0 releases
        assert!(model.enabled(&s2, Tid(1)));
    }

    #[test]
    fn lock_array_indexes_by_expression() {
        let mut m = ModelBuilder::new();
        let locks = m.lock_array("bucket", 3);
        m.thread("t", |t| {
            let i = t.local();
            t.compute(i, 2);
            t.acquire_idx(locks, i);
            t.release_idx(locks, i);
        });
        let model = m.build();
        let s0 = model.initial_state().unwrap();
        let s1 = model.step(&s0, Tid(0)).unwrap();
        assert_eq!(s1.locks[2], Some(0));
        assert_eq!(s1.locks[0], None);
    }

    #[test]
    fn assert_failure_surfaces_as_step_error() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 41);
        m.thread("t", |t| {
            let v = t.local();
            t.load(g, v);
            t.assert(v.eq(42), "g must be 42");
        });
        let model = m.build();
        let s0 = model.initial_state().unwrap();
        let err = model.step(&s0, Tid(0)).unwrap_err();
        assert_eq!(err.thread(), Tid(0));
        assert_eq!(err.message(), "g must be 42");
    }

    #[test]
    fn cas_and_rmw_semantics() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 5);
        m.thread("t", |t| {
            let old = t.local();
            let ok = t.local();
            t.fetch_add(g, 3, old); // g = 8, old = 5
            t.cas(g, 8, 100, ok); // succeeds
            t.assert(ok.eq(1), "cas 1 should succeed");
            t.cas(g, 8, 200, ok); // fails (g = 100)
            t.assert(ok.eq(0), "cas 2 should fail");
            t.exchange(g, 7, old); // old = 100, g = 7
            t.assert(old.eq(100), "xchg old value");
            t.fetch_sub(g, 2, old); // g = 5
        });
        let model = m.build();
        let mut s = model.initial_state().unwrap();
        while model.enabled(&s, Tid(0)) {
            s = model.step(&s, Tid(0)).unwrap();
        }
        assert_eq!(s.globals[0], 5);
    }

    #[test]
    fn wait_nonzero_blocks_until_signaled() {
        let mut m = ModelBuilder::new();
        let ev = m.global("ev", 0);
        m.thread("waiter", |t| t.wait_nonzero(ev));
        m.thread("setter", |t| t.store(ev, 1));
        let model = m.build();
        let s0 = model.initial_state().unwrap();
        assert!(!model.enabled(&s0, Tid(0)));
        assert!(model.next_is_blocking(&s0, Tid(0)));
        let s1 = model.step(&s0, Tid(1)).unwrap();
        assert!(model.enabled(&s1, Tid(0)));
    }

    #[test]
    fn local_loop_is_detected() {
        let mut m = ModelBuilder::new();
        let _g = m.global("g", 0);
        m.thread("spinner", |t| {
            let top = t.new_label();
            t.place(top);
            t.jump(top); // no shared access: illegal model
        });
        let model = m.build();
        let err = model.initial_state().unwrap_err();
        assert!(matches!(err, crate::model::StepError::LocalLoop { .. }));
    }

    #[test]
    #[should_panic(expected = "lock 3 out of range")]
    fn out_of_range_lock_is_rejected_at_build() {
        let mut m = ModelBuilder::new();
        let _l = m.lock("only");
        m.thread("bad", |t| {
            t.acquire(crate::instr::Lock(3));
        });
        let _ = m.build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_local_is_rejected_at_build() {
        // A Local forged beyond the thread's allocation.
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        m.thread("bad", |t| {
            let _a = t.local();
            t.load(g, crate::expr::Local(7));
        });
        let _ = m.build();
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut m = ModelBuilder::new();
        m.thread("bad", |t| {
            let l = t.new_label();
            t.jump(l);
        });
    }

    #[test]
    fn states_hash_and_compare() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        m.thread("t", |t| t.store(g, 1));
        let model = m.build();
        let a = model.initial_state().unwrap();
        let b = model.initial_state().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = model.step(&a, Tid(0)).unwrap();
        assert_ne!(a, c);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
