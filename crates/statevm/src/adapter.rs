//! Driving a [`Model`] statelessly, as a
//! [`ControlledProgram`](icb_core::ControlledProgram).
//!
//! This lets every `icb-core` search strategy (ICB, DFS, `db:N`, `idfs`,
//! random) run over VM models by re-interpreting the model from its
//! initial state under each schedule, with the *exact* concrete state
//! hash as the coverage fingerprint. It is also the bridge for
//! cross-validating the stateless searches against the explicit-state
//! checker ([`crate::ExplicitIcb`]): both must see the same state space.

use std::time::{Duration, Instant};

use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, FaultPoint, NoopObserver, Phase,
    SchedulePoint, Scheduler, SearchObserver, SiteId, StateSink, Tid, Trace, TraceEntry,
};

use crate::model::{Model, StepError};

impl ControlledProgram for Model {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        self.execute_observed(scheduler, sink, &mut NoopObserver)
    }

    /// The VM hashes the complete concrete machine state (globals,
    /// locals, pcs, lock/monitor state), so equal fingerprints mean
    /// equal states and cache pruning on them is sound.
    fn fingerprints_are_exact(&self) -> bool {
        true
    }

    fn execute_observed(
        &self,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn StateSink,
        observer: &mut dyn SearchObserver,
    ) -> ExecutionResult {
        let time_phases = observer.wants_phase_timing();
        let t_start = time_phases.then(Instant::now);
        let mut selection = Duration::ZERO;
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        let outcome = 'run: {
            let mut state = match self.initial_state() {
                Ok(s) => s,
                Err(e) => break 'run step_error_outcome(e),
            };
            sink.visit(state.fingerprint());
            loop {
                let enabled = self.enabled_set(&state);
                if enabled.is_empty() {
                    break 'run if self.all_finished(&state) {
                        ExecutionOutcome::Terminated
                    } else {
                        ExecutionOutcome::Deadlock {
                            blocked: (0..self.thread_count())
                                .map(Tid)
                                .filter(|&t| !self.is_finished(&state, t))
                                .collect(),
                        }
                    };
                }
                if trace.len() >= self.max_steps() {
                    break 'run ExecutionOutcome::StepLimitExceeded;
                }
                let current_enabled = current.is_some_and(|c| enabled.contains(&c));
                let point = SchedulePoint {
                    step_index: trace.len(),
                    current,
                    current_enabled,
                    enabled: &enabled,
                };
                let chosen = {
                    let t0 = time_phases.then(Instant::now);
                    let chosen = scheduler.pick(point);
                    if let Some(t0) = t0 {
                        selection += t0.elapsed();
                    }
                    chosen
                };
                assert!(
                    enabled.contains(&chosen),
                    "scheduler chose disabled thread {chosen}"
                );
                let blocking = self.next_is_blocking(&state, chosen);
                let site = self
                    .next_shared(&state, chosen)
                    .map_or(SiteId::UNKNOWN, |i| {
                        let pc = state.threads[chosen.index()].pc as u32;
                        SiteId::at(chosen.index() as u32, i.mnemonic(), pc)
                    });
                // Fault decisions share the step with the scheduling
                // decision, so a replayed schedule realigns both.
                let fault = self.next_is_fallible(&state, chosen) && {
                    let t0 = time_phases.then(Instant::now);
                    let fault = scheduler.decide_fault(FaultPoint {
                        step_index: trace.len(),
                        tid: chosen,
                        site,
                    });
                    if let Some(t0) = t0 {
                        selection += t0.elapsed();
                    }
                    fault
                };
                trace.push(
                    TraceEntry::new(chosen, enabled, current, current_enabled, blocking)
                        .with_site(site)
                        .with_fault(fault),
                );
                current = Some(chosen);
                if let Err(e) = self.step_in_place_faulted(&mut state, chosen, fault) {
                    break 'run step_error_outcome(e);
                }
                sink.visit(state.fingerprint());
            }
        };
        if let Some(t_start) = t_start {
            // The VM has no replay/race-detection machinery: everything
            // that is not schedule selection is re-interpretation (replay).
            observer.phase_time(Phase::Selection, selection);
            observer.phase_time(Phase::RaceDetection, Duration::ZERO);
            observer.phase_time(Phase::Replay, t_start.elapsed().saturating_sub(selection));
        }
        ExecutionResult::from_trace(outcome, trace)
    }
}

fn step_error_outcome(e: StepError) -> ExecutionOutcome {
    ExecutionOutcome::AssertionFailure {
        thread: e.thread(),
        message: e.message(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use icb_core::search::{Search, SearchConfig, Strategy};

    #[test]
    fn searches_find_the_lost_update() {
        // The checker "joins" both incrementers by blocking until the
        // completion counter reaches 2. (A spin loop here would livelock
        // under the forced-continue policy of the nested ICB search and
        // explode the step budget — blocking waits are the VM's join
        // idiom.)
        let mut m = ModelBuilder::new();
        let counter = m.global("counter", 0);
        let finished = m.global("finished", 0);
        for _ in 0..2 {
            m.thread("inc", |t| {
                let tmp = t.local();
                t.load(counter, tmp);
                t.store(counter, tmp + 1);
                t.fetch_add(finished, 1, tmp);
            });
        }
        m.thread("check", |t| {
            let v = t.local();
            t.wait_eq(finished, 2);
            t.load(counter, v);
            t.assert(v.eq(2), "lost update");
        });
        let model = m.build();

        let bug = Search::over(&model)
            .config(SearchConfig {
                max_executions: Some(1_000_000),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .bugs
            .into_iter()
            .next()
            .expect("lost update found");
        assert_eq!(bug.preemptions, 1);

        let dfs = Search::over(&model)
            .strategy(Strategy::Dfs)
            .config(SearchConfig {
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(!dfs.bugs.is_empty());
    }

    #[test]
    fn fail_point_bug_needs_a_fault_bound() {
        // A thread that asserts its "I/O" never fails: invisible at
        // fault bound 0, a minimum-(0 preemptions, 1 fault) witness at 1.
        let build = || {
            let mut m = ModelBuilder::new();
            let _g = m.global("g", 0);
            m.thread("writer", |t| {
                let failed = t.local();
                t.fail_point("disk-write", failed);
                t.assert(failed.eq(0), "unhandled write failure");
            });
            m.build()
        };
        let clean = Search::over(&build())
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(clean.completed && clean.bugs.is_empty());

        let faulty = Search::over(&build())
            .config(SearchConfig {
                fault_bound: 1,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        let bug = faulty.bugs.first().expect("fault exposes the bug");
        assert_eq!((bug.preemptions, bug.faults), (0, 1));
        assert_eq!(bug.schedule.fault_count(), 1);

        // The witness replays byte-deterministically.
        let model = build();
        let mut replay = icb_core::ReplayScheduler::new(bug.schedule.clone());
        let r = model.execute(&mut replay, &mut icb_core::NullSink);
        assert!(matches!(
            r.outcome,
            ExecutionOutcome::AssertionFailure { .. }
        ));
        assert_eq!(r.trace.schedule(), bug.schedule);
    }

    #[test]
    fn terminating_model_completes_under_icb() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        for _ in 0..2 {
            m.thread("w", |t| {
                let tmp = t.local();
                t.fetch_add(g, 1, tmp);
            });
        }
        let model = m.build();
        let report = Search::over(&model)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(report.completed);
        assert!(report.bugs.is_empty());
        // Two atomic increments: two schedules.
        assert_eq!(report.executions, 2);
    }

    #[test]
    fn deadlock_model_reports_deadlock() {
        let mut m = ModelBuilder::new();
        let a = m.lock("a");
        let b = m.lock("b");
        m.thread("t0", |t| {
            t.acquire(a);
            t.acquire(b);
            t.release(b);
            t.release(a);
        });
        m.thread("t1", |t| {
            t.acquire(b);
            t.acquire(a);
            t.release(a);
            t.release(b);
        });
        let model = m.build();
        let bug = Search::over(&model)
            .config(SearchConfig {
                max_executions: Some(100_000),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .bugs
            .into_iter()
            .next()
            .expect("deadlock");
        assert!(matches!(bug.outcome, ExecutionOutcome::Deadlock { .. }));
        assert_eq!(bug.preemptions, 1);
    }

    #[test]
    fn step_limit_reported_for_nonterminating_schedules() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        m.max_steps(32);
        m.thread("spin", |t| {
            let v = t.local();
            let top = t.new_label();
            t.place(top);
            t.load(g, v); // spin forever on a shared read
            t.jump(top);
        });
        let model = m.build();
        let mut replay = icb_core::ReplayScheduler::new(Default::default());
        let r = model.execute(&mut replay, &mut icb_core::NullSink);
        assert_eq!(r.outcome, ExecutionOutcome::StepLimitExceeded);
    }

    #[test]
    fn observed_execution_resolves_sites_and_emits_phase_times() {
        #[derive(Default)]
        struct PhaseCatcher {
            phases: Vec<(Phase, Duration)>,
        }
        impl SearchObserver for PhaseCatcher {
            fn wants_phase_timing(&self) -> bool {
                true
            }
            fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
                self.phases.push((phase, elapsed));
            }
        }

        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        for _ in 0..2 {
            m.thread("w", |t| {
                let tmp = t.local();
                t.fetch_add(g, 1, tmp);
            });
        }
        let model = m.build();
        let mut replay = icb_core::ReplayScheduler::new(Default::default());
        let mut obs = PhaseCatcher::default();
        let r = model.execute_observed(&mut replay, &mut icb_core::NullSink, &mut obs);
        assert_eq!(r.outcome, ExecutionOutcome::Terminated);
        // Every step carries a resolved per-thread site: "t{tid}:rmw@pc".
        for entry in r.trace.entries() {
            assert!(!entry.site.is_unknown());
            assert_eq!(entry.site.class, "rmw");
            assert_eq!(entry.site.thread, entry.chosen.index() as u32);
        }
        // Exactly one report per phase, race detection pinned to zero.
        let kinds: Vec<Phase> = obs.phases.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            kinds,
            vec![Phase::Selection, Phase::RaceDetection, Phase::Replay]
        );
        assert_eq!(obs.phases[1].1, Duration::ZERO);
    }

    #[test]
    fn execute_and_execute_observed_agree() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        for _ in 0..2 {
            m.thread("w", |t| {
                let tmp = t.local();
                t.load(g, tmp);
                t.store(g, tmp + 1);
            });
        }
        let model = m.build();
        let schedule: icb_core::Schedule = "0 1 0 1".parse().unwrap();
        let mut replay = icb_core::ReplayScheduler::new(schedule.clone());
        let plain = model.execute(&mut replay, &mut icb_core::NullSink);
        let mut replay = icb_core::ReplayScheduler::new(schedule);
        let observed =
            model.execute_observed(&mut replay, &mut icb_core::NullSink, &mut NoopObserver);
        assert_eq!(plain.outcome, observed.outcome);
        assert_eq!(plain.trace.schedule(), observed.trace.schedule());
        assert_eq!(plain.stats, observed.stats);
    }

    #[test]
    fn initial_assert_failure_is_an_immediate_bug() {
        let mut m = ModelBuilder::new();
        let _g = m.global("g", 0);
        m.thread("t", |t| {
            t.assert(Expr::konst(0), "always fails");
            t.yield_point();
        });
        use crate::expr::Expr;
        let model = m.build();
        let mut replay = icb_core::ReplayScheduler::new(Default::default());
        let r = model.execute(&mut replay, &mut icb_core::NullSink);
        assert!(matches!(
            r.outcome,
            ExecutionOutcome::AssertionFailure { .. }
        ));
        assert_eq!(r.stats.steps, 0);
    }
}
