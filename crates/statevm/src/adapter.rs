//! Driving a [`Model`] statelessly, as a
//! [`ControlledProgram`](icb_core::ControlledProgram).
//!
//! This lets every `icb-core` search strategy (ICB, DFS, `db:N`, `idfs`,
//! random) run over VM models by re-interpreting the model from its
//! initial state under each schedule, with the *exact* concrete state
//! hash as the coverage fingerprint. It is also the bridge for
//! cross-validating the stateless searches against the explicit-state
//! checker ([`crate::ExplicitIcb`]): both must see the same state space.

use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, SchedulePoint, Scheduler, StateSink, Tid,
    Trace, TraceEntry,
};

use crate::model::{Model, StepError};

impl ControlledProgram for Model {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        let mut state = match self.initial_state() {
            Ok(s) => s,
            Err(e) => {
                return ExecutionResult::from_trace(step_error_outcome(e), trace);
            }
        };
        sink.visit(state.fingerprint());
        loop {
            let enabled = self.enabled_set(&state);
            if enabled.is_empty() {
                let outcome = if self.all_finished(&state) {
                    ExecutionOutcome::Terminated
                } else {
                    ExecutionOutcome::Deadlock {
                        blocked: (0..self.thread_count())
                            .map(Tid)
                            .filter(|&t| !self.is_finished(&state, t))
                            .collect(),
                    }
                };
                return ExecutionResult::from_trace(outcome, trace);
            }
            if trace.len() >= self.max_steps() {
                return ExecutionResult::from_trace(ExecutionOutcome::StepLimitExceeded, trace);
            }
            let current_enabled = current.is_some_and(|c| enabled.contains(&c));
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            assert!(
                enabled.contains(&chosen),
                "scheduler chose disabled thread {chosen}"
            );
            let blocking = self.next_is_blocking(&state, chosen);
            trace.push(TraceEntry::new(
                chosen,
                enabled,
                current,
                current_enabled,
                blocking,
            ));
            current = Some(chosen);
            if let Err(e) = self.step_in_place(&mut state, chosen) {
                return ExecutionResult::from_trace(step_error_outcome(e), trace);
            }
            sink.visit(state.fingerprint());
        }
    }
}

fn step_error_outcome(e: StepError) -> ExecutionOutcome {
    ExecutionOutcome::AssertionFailure {
        thread: e.thread(),
        message: e.message(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use icb_core::search::{DfsSearch, IcbSearch, SearchConfig};

    #[test]
    fn searches_find_the_lost_update() {
        // The checker "joins" both incrementers by blocking until the
        // completion counter reaches 2. (A spin loop here would livelock
        // under the forced-continue policy of the nested ICB search and
        // explode the step budget — blocking waits are the VM's join
        // idiom.)
        let mut m = ModelBuilder::new();
        let counter = m.global("counter", 0);
        let finished = m.global("finished", 0);
        for _ in 0..2 {
            m.thread("inc", |t| {
                let tmp = t.local();
                t.load(counter, tmp);
                t.store(counter, tmp + 1);
                t.fetch_add(finished, 1, tmp);
            });
        }
        m.thread("check", |t| {
            let v = t.local();
            t.wait_eq(finished, 2);
            t.load(counter, v);
            t.assert(v.eq(2), "lost update");
        });
        let model = m.build();

        let bug = IcbSearch::find_minimal_bug(&model, 1_000_000).expect("lost update found");
        assert_eq!(bug.preemptions, 1);

        let dfs = DfsSearch::new(SearchConfig {
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run(&model);
        assert!(!dfs.bugs.is_empty());
    }

    #[test]
    fn terminating_model_completes_under_icb() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        for _ in 0..2 {
            m.thread("w", |t| {
                let tmp = t.local();
                t.fetch_add(g, 1, tmp);
            });
        }
        let model = m.build();
        let report = IcbSearch::new(SearchConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty());
        // Two atomic increments: two schedules.
        assert_eq!(report.executions, 2);
    }

    #[test]
    fn deadlock_model_reports_deadlock() {
        let mut m = ModelBuilder::new();
        let a = m.lock("a");
        let b = m.lock("b");
        m.thread("t0", |t| {
            t.acquire(a);
            t.acquire(b);
            t.release(b);
            t.release(a);
        });
        m.thread("t1", |t| {
            t.acquire(b);
            t.acquire(a);
            t.release(a);
            t.release(b);
        });
        let model = m.build();
        let bug = IcbSearch::find_minimal_bug(&model, 100_000).expect("deadlock");
        assert!(matches!(bug.outcome, ExecutionOutcome::Deadlock { .. }));
        assert_eq!(bug.preemptions, 1);
    }

    #[test]
    fn step_limit_reported_for_nonterminating_schedules() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        m.max_steps(32);
        m.thread("spin", |t| {
            let v = t.local();
            let top = t.new_label();
            t.place(top);
            t.load(g, v); // spin forever on a shared read
            t.jump(top);
        });
        let model = m.build();
        let mut replay = icb_core::ReplayScheduler::new(Default::default());
        let r = model.execute(&mut replay, &mut icb_core::NullSink);
        assert_eq!(r.outcome, ExecutionOutcome::StepLimitExceeded);
    }

    #[test]
    fn initial_assert_failure_is_an_immediate_bug() {
        let mut m = ModelBuilder::new();
        let _g = m.global("g", 0);
        m.thread("t", |t| {
            t.assert(Expr::konst(0), "always fails");
            t.yield_point();
        });
        use crate::expr::Expr;
        let model = m.build();
        let mut replay = icb_core::ReplayScheduler::new(Default::default());
        let r = model.execute(&mut replay, &mut icb_core::NullSink);
        assert!(matches!(
            r.outcome,
            ExecutionOutcome::AssertionFailure { .. }
        ));
        assert_eq!(r.stats.steps, 0);
    }
}
