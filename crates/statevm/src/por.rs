//! Partial-order reduction via sleep sets — the paper's stated future
//! work ("incorporating complementary state-reduction techniques, such
//! as partial-order reduction, could improve scalability", Section 6).
//!
//! Two steps of different threads are *independent* when their shared
//! accesses do not conflict (disjoint objects, or both reads): executing
//! them in either order reaches the same state. A sleep-set DFS
//! (Godefroid) carries the set of threads whose exploration from the
//! current state would only commute with already-explored alternatives,
//! pruning one of every pair of equivalent interleavings:
//!
//! ```text
//! explore(s, sleep):
//!     done = ∅
//!     for t in enabled(s) \ sleep:
//!         explore(step(s, t),
//!                 { u ∈ sleep ∪ done | next(u) independent of next(t) at s })
//!         done ∪= {t}
//! ```
//!
//! Sleep sets preserve every deadlock and every assertion-failing
//! transition (each Mazurkiewicz trace keeps at least one
//! linearization), so bug-finding verdicts match the unreduced search —
//! property-tested in this crate and cross-checked on the benchmark
//! models. Intermediate states of pruned linearizations are *not* all
//! visited; that is the saving.

use std::collections::HashSet;

use icb_core::Tid;

use crate::instr::{BlockPred, Instr};
use crate::model::{Model, StepError, VmState};

/// A shared object touched by one step, for the independence check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Object {
    /// A global scalar.
    Global(usize),
    /// One slot of a global array.
    ArraySlot(usize, usize),
    /// A lock.
    Lock(usize),
}

/// The (object, is-write) footprint of the next step of a thread.
pub type Footprint = Vec<(Object, bool)>;

impl Model {
    /// The shared-access footprint of `tid`'s next step in `state`
    /// (empty for a finished thread or a pure `Yield`).
    pub fn step_footprint(&self, state: &VmState, tid: Tid) -> Footprint {
        let ts = &state.threads[tid.index()];
        let Some(instr) = self.threads[tid.index()].code.get(ts.pc) else {
            return Vec::new();
        };
        let locals = &ts.locals;
        match instr {
            Instr::LoadGlobal { global, .. } => vec![(Object::Global(global.index()), false)],
            Instr::StoreGlobal { global, .. } => vec![(Object::Global(global.index()), true)],
            Instr::Rmw { global, .. } | Instr::Cas { global, .. } => {
                vec![(Object::Global(global.index()), true)]
            }
            Instr::BlockUntil { global, pred } => {
                // Reads the global; its enabledness also depends on it,
                // which the read conflict with any writer captures.
                let _ = matches!(pred, BlockPred::NonZero);
                vec![(Object::Global(global.index()), false)]
            }
            Instr::LoadArr { arr, idx, .. } => {
                vec![(
                    Object::ArraySlot(arr.index(), idx.eval(locals) as usize),
                    false,
                )]
            }
            Instr::StoreArr { arr, idx, .. } => {
                vec![(
                    Object::ArraySlot(arr.index(), idx.eval(locals) as usize),
                    true,
                )]
            }
            Instr::Acquire { lock } | Instr::Release { lock } => {
                vec![(Object::Lock(lock.eval(locals) as usize), true)]
            }
            // A fail point writes only the thread's own local: no shared
            // footprint, independent of every other step.
            Instr::Yield | Instr::FailPoint { .. } => Vec::new(),
            local => unreachable!("normalized pc on shared instruction, found {local:?}"),
        }
    }

    /// Are the next steps of `a` and `b` independent in `state`?
    pub fn steps_independent(&self, state: &VmState, a: Tid, b: Tid) -> bool {
        if a == b {
            return false;
        }
        let fa = self.step_footprint(state, a);
        let fb = self.step_footprint(state, b);
        for (oa, wa) in &fa {
            for (ob, wb) in &fb {
                if oa == ob && (*wa || *wb) {
                    return false;
                }
            }
        }
        true
    }
}

/// Configuration for the sleep-set search.
#[derive(Clone, Debug)]
pub struct PorConfig {
    /// Enable the sleep-set pruning (off = plain DFS, for comparison).
    pub sleep_sets: bool,
    /// Stop at the first assertion failure or deadlock.
    pub stop_on_first_bug: bool,
    /// Safety valve on explored transitions.
    pub max_transitions: usize,
}

impl Default for PorConfig {
    fn default() -> Self {
        PorConfig {
            sleep_sets: true,
            stop_on_first_bug: false,
            max_transitions: 50_000_000,
        }
    }
}

/// Result of a sleep-set search.
#[derive(Clone, Debug, Default)]
pub struct PorReport {
    /// Transitions (steps) explored — the work measure POR reduces.
    pub transitions: usize,
    /// Distinct states encountered.
    pub distinct_states: usize,
    /// Complete executions (maximal paths) explored.
    pub executions: usize,
    /// Assertion failures found (message, witness schedule).
    pub assertion_failures: Vec<(String, Vec<Tid>)>,
    /// Deadlocked states found (witness schedules).
    pub deadlocks: Vec<Vec<Tid>>,
    /// `true` if the search space was exhausted within the limits.
    pub completed: bool,
}

impl PorReport {
    /// Any bug at all?
    pub fn has_bug(&self) -> bool {
        !self.assertion_failures.is_empty() || !self.deadlocks.is_empty()
    }
}

/// Depth-first search with sleep sets over a model's acyclic space.
///
/// # Panics
///
/// Panics if the model's initial state cannot be constructed.
pub fn sleep_set_dfs(model: &Model, config: &PorConfig) -> PorReport {
    let initial = model
        .initial_state()
        .expect("initial state must be constructible");
    let mut search = PorSearch {
        model,
        config,
        report: PorReport::default(),
        states: HashSet::new(),
        path: Vec::new(),
        stop: false,
    };
    search.states.insert(initial.fingerprint());
    search.explore(&initial, Vec::new());
    let mut report = search.report;
    report.distinct_states = search.states.len();
    report.completed = !search.stop;
    report
}

struct PorSearch<'a> {
    model: &'a Model,
    config: &'a PorConfig,
    report: PorReport,
    states: HashSet<u64>,
    path: Vec<Tid>,
    stop: bool,
}

impl PorSearch<'_> {
    fn explore(&mut self, state: &VmState, sleep: Vec<Tid>) {
        if self.stop {
            return;
        }
        let enabled = self.model.enabled_set(state);
        if enabled.is_empty() {
            self.report.executions += 1;
            if !self.model.all_finished(state) {
                self.report.deadlocks.push(self.path.clone());
                if self.config.stop_on_first_bug {
                    self.stop = true;
                }
            }
            return;
        }
        let explorable: Vec<Tid> = if self.config.sleep_sets {
            enabled
                .iter()
                .copied()
                .filter(|t| !sleep.contains(t))
                .collect()
        } else {
            enabled.clone()
        };
        if explorable.is_empty() {
            // Everything enabled is asleep: this path is redundant.
            return;
        }
        let mut done: Vec<Tid> = Vec::new();
        for &t in &explorable {
            if self.stop {
                return;
            }
            self.report.transitions += 1;
            if self.report.transitions >= self.config.max_transitions {
                self.stop = true;
                return;
            }
            // The child's sleep set: previously slept or already-explored
            // siblings whose next step commutes with t's.
            let child_sleep: Vec<Tid> = sleep
                .iter()
                .chain(done.iter())
                .copied()
                .filter(|&u| self.model.steps_independent(state, t, u))
                .collect();
            self.path.push(t);
            match self.model.step(state, t) {
                Ok(next) => {
                    self.states.insert(next.fingerprint());
                    self.explore(&next, child_sleep);
                }
                Err(StepError::Assert { message, .. }) => {
                    self.report.executions += 1;
                    self.report
                        .assertion_failures
                        .push((message, self.path.clone()));
                    if self.config.stop_on_first_bug {
                        self.stop = true;
                    }
                }
                Err(e) => {
                    self.report.executions += 1;
                    self.report
                        .assertion_failures
                        .push((e.message(), self.path.clone()));
                    if self.config.stop_on_first_bug {
                        self.stop = true;
                    }
                }
            }
            self.path.pop();
            done.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    fn independent_pair_model() -> Model {
        // Two threads on disjoint globals: fully independent.
        let mut m = ModelBuilder::new();
        let g0 = m.global("g0", 0);
        let g1 = m.global("g1", 0);
        m.thread("t0", |t| {
            t.store(g0, 1);
            t.store(g0, 2);
        });
        m.thread("t1", |t| {
            t.store(g1, 1);
            t.store(g1, 2);
        });
        m.build()
    }

    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        let model = independent_pair_model();
        let plain = sleep_set_dfs(
            &model,
            &PorConfig {
                sleep_sets: false,
                ..PorConfig::default()
            },
        );
        let reduced = sleep_set_dfs(&model, &PorConfig::default());
        assert!(plain.completed && reduced.completed);
        // Fully independent threads: C(4,2) = 6 interleavings reduce to 1.
        assert_eq!(plain.executions, 6);
        assert_eq!(reduced.executions, 1);
        assert!(reduced.transitions < plain.transitions);
    }

    #[test]
    fn dependent_steps_are_not_pruned() {
        // Both threads write the same global: nothing commutes.
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        for _ in 0..2 {
            m.thread("t", |t| t.store(g, 1));
        }
        let model = m.build();
        let plain = sleep_set_dfs(
            &model,
            &PorConfig {
                sleep_sets: false,
                ..PorConfig::default()
            },
        );
        let reduced = sleep_set_dfs(&model, &PorConfig::default());
        assert_eq!(plain.executions, reduced.executions);
    }

    #[test]
    fn footprints_classify_accesses() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        let l = m.lock("l");
        m.thread("reader", |t| {
            let v = t.local();
            t.load(g, v);
        });
        m.thread("writer", |t| t.store(g, 1));
        m.thread("locker", |t| {
            t.acquire(l);
            t.release(l);
        });
        let model = m.build();
        let s = model.initial_state().unwrap();
        // reader/writer conflict (read-write on g).
        assert!(!model.steps_independent(&s, Tid(0), Tid(1)));
        // reader/locker independent (disjoint objects).
        assert!(model.steps_independent(&s, Tid(0), Tid(2)));
        // writer/locker independent.
        assert!(model.steps_independent(&s, Tid(1), Tid(2)));
        // a thread is never independent of itself.
        assert!(!model.steps_independent(&s, Tid(0), Tid(0)));
    }

    #[test]
    fn two_readers_are_independent() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 7);
        for _ in 0..2 {
            m.thread("r", |t| {
                let v = t.local();
                t.load(g, v);
            });
        }
        let model = m.build();
        let s = model.initial_state().unwrap();
        assert!(model.steps_independent(&s, Tid(0), Tid(1)));
        let reduced = sleep_set_dfs(&model, &PorConfig::default());
        assert_eq!(reduced.executions, 1);
    }

    #[test]
    fn bugs_survive_the_reduction() {
        // A lost-update assertion: the reduced search must find it too.
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        let done = m.global("done", 0);
        for _ in 0..2 {
            m.thread("inc", |t| {
                let tmp = t.local();
                t.load(g, tmp);
                t.store(g, tmp + 1);
                t.fetch_add(done, 1, tmp);
            });
        }
        m.thread("check", |t| {
            let v = t.local();
            t.wait_eq(done, 2);
            t.load(g, v);
            t.assert(v.eq(2), "lost update");
        });
        let model = m.build();
        let plain = sleep_set_dfs(
            &model,
            &PorConfig {
                sleep_sets: false,
                ..PorConfig::default()
            },
        );
        let reduced = sleep_set_dfs(&model, &PorConfig::default());
        assert!(plain.has_bug());
        assert!(reduced.has_bug(), "sleep sets must preserve the bug");
        assert!(reduced.transitions <= plain.transitions);
    }

    #[test]
    fn deadlocks_survive_the_reduction() {
        let mut m = ModelBuilder::new();
        let a = m.lock("a");
        let b = m.lock("b");
        m.thread("t0", |t| {
            t.acquire(a);
            t.acquire(b);
            t.release(b);
            t.release(a);
        });
        m.thread("t1", |t| {
            t.acquire(b);
            t.acquire(a);
            t.release(a);
            t.release(b);
        });
        let model = m.build();
        let reduced = sleep_set_dfs(&model, &PorConfig::default());
        assert!(!reduced.deadlocks.is_empty());
    }

    #[test]
    fn witness_schedules_replay() {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        m.thread("w", |t| t.store(g, 1));
        m.thread("check", |t| {
            let v = t.local();
            t.load(g, v);
            t.assert(v.eq(0), "observed the write");
        });
        let model = m.build();
        let report = sleep_set_dfs(&model, &PorConfig::default());
        let (msg, schedule) = report.assertion_failures.first().expect("bug");
        assert_eq!(msg, "observed the write");
        // Replay through the stateless adapter.
        let sched: icb_core::Schedule = schedule.iter().copied().collect();
        let mut replay = icb_core::ReplayScheduler::new(sched);
        let r = icb_core::ControlledProgram::execute(&model, &mut replay, &mut icb_core::NullSink);
        assert!(r.outcome.is_bug());
    }
}
