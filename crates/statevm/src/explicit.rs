//! Explicit-state model checking with state caching — the ZING side of
//! the paper's evaluation.
//!
//! [`ExplicitIcb`] is Algorithm 1 *verbatim*: two queues of
//! `WorkItem { state, tid }`, a recursive `Search` that follows the
//! current thread while it stays enabled and defers every preempting
//! alternative to the next queue, plus the optional `table` of visited
//! work items that prunes revisits (the state-caching extension the paper
//! describes at the end of Section 3).
//!
//! [`reachable_states`] computes the full reachable state space by plain
//! BFS — the denominator of the "% state space covered" axes of
//! Figures 1 and 4.

use std::collections::{HashSet, VecDeque};

use icb_core::Tid;

use crate::model::{Model, StepError, VmState};

/// Configuration for the explicit-state ICB search.
#[derive(Clone, Debug)]
pub struct ExplicitConfig {
    /// Stop after completing this preemption bound (`None` = run until
    /// the queues drain).
    pub preemption_bound: Option<usize>,
    /// Use the visited-work-item table (state caching). Disabling it
    /// reproduces the stateless exploration order at explicit-state
    /// prices — only useful for cross-validation on tiny models.
    pub state_caching: bool,
    /// Stop at the first assertion failure.
    pub stop_on_first_bug: bool,
    /// Safety valve on the number of `Search` invocations.
    pub max_work: usize,
}

impl Default for ExplicitConfig {
    fn default() -> Self {
        ExplicitConfig {
            preemption_bound: None,
            state_caching: true,
            stop_on_first_bug: false,
            max_work: 50_000_000,
        }
    }
}

/// A bug found by the explicit-state search.
#[derive(Clone, Debug)]
pub struct ExplicitBug {
    /// The failing thread.
    pub thread: Tid,
    /// The assertion (or model-error) message.
    pub message: String,
    /// The preemption bound at which the bug was first reached — by the
    /// iteration order of Algorithm 1, the minimal number of preemptions
    /// needed to expose it.
    pub bound: usize,
    /// A witness schedule from the initial state.
    pub schedule: Vec<Tid>,
}

/// Per-bound statistics of the explicit search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExplicitBoundStats {
    /// The completed preemption bound.
    pub bound: usize,
    /// Cumulative distinct *states* visited after this bound.
    pub cumulative_states: usize,
    /// Work items processed at this bound.
    pub work_items: usize,
}

/// Result of an [`ExplicitIcb`] run.
#[derive(Clone, Debug, Default)]
pub struct ExplicitReport {
    /// Distinct states visited.
    pub distinct_states: usize,
    /// Statistics per completed bound (the data behind Figures 1 and 4).
    pub bound_history: Vec<ExplicitBoundStats>,
    /// Highest fully completed bound.
    pub completed_bound: Option<usize>,
    /// `true` if the search drained both queues (full exploration).
    pub completed: bool,
    /// Bugs, in discovery order (hence sorted by bound).
    pub bugs: Vec<ExplicitBug>,
    /// Total work items processed.
    pub work_items: usize,
}

/// Algorithm 1 with optional state caching over a [`Model`].
#[derive(Clone, Debug, Default)]
pub struct ExplicitIcb {
    config: ExplicitConfig,
}

struct WorkItem {
    state: VmState,
    tid: Tid,
    /// Witness schedule reaching `state` (first discovery).
    path: Vec<Tid>,
}

impl ExplicitIcb {
    /// Creates the search.
    pub fn new(config: ExplicitConfig) -> Self {
        ExplicitIcb { config }
    }

    /// Runs the search on `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model's initial state cannot be constructed (an
    /// assertion fails before any shared access — a model bug).
    pub fn run(&self, model: &Model) -> ExplicitReport {
        let initial = model
            .initial_state()
            .expect("initial state must be constructible");

        let mut search = SearchState {
            model,
            config: &self.config,
            table: HashSet::new(),
            states: HashSet::new(),
            next_queue: VecDeque::new(),
            bugs: Vec::new(),
            work_items: 0,
            bound: 0,
            stop: false,
        };
        search.states.insert(initial.fingerprint());

        let mut queue: VecDeque<WorkItem> = model
            .enabled_set(&initial)
            .into_iter()
            .map(|tid| WorkItem {
                state: initial.clone(),
                tid,
                path: Vec::new(),
            })
            .collect();

        let mut report = ExplicitReport::default();
        loop {
            let items_before = search.work_items;
            while let Some(w) = queue.pop_front() {
                search.search(w);
                if search.stop {
                    break;
                }
            }
            if search.stop {
                break;
            }
            report.bound_history.push(ExplicitBoundStats {
                bound: search.bound,
                cumulative_states: search.states.len(),
                work_items: search.work_items - items_before,
            });
            report.completed_bound = Some(search.bound);
            if search.next_queue.is_empty() {
                report.completed = true;
                break;
            }
            if self
                .config
                .preemption_bound
                .is_some_and(|pb| search.bound >= pb)
            {
                break;
            }
            search.bound += 1;
            queue = std::mem::take(&mut search.next_queue);
        }

        report.distinct_states = search.states.len();
        report.bugs = search.bugs;
        report.work_items = search.work_items;
        report
    }
}

struct SearchState<'a> {
    model: &'a Model,
    config: &'a ExplicitConfig,
    /// Visited `(state, tid)` work items (the paper's `table`).
    table: HashSet<(u64, Tid)>,
    /// Visited state fingerprints (coverage).
    states: HashSet<u64>,
    next_queue: VecDeque<WorkItem>,
    bugs: Vec<ExplicitBug>,
    work_items: usize,
    bound: usize,
    stop: bool,
}

impl SearchState<'_> {
    /// Lines 22–39 of Algorithm 1 (iterative formulation to keep the
    /// stack shallow: the "continue current thread" recursion is a
    /// loop; only nonpreempting branching recurses).
    fn search(&mut self, w: WorkItem) {
        let mut stack = vec![w];
        while let Some(w) = stack.pop() {
            if self.stop {
                return;
            }
            if self.config.state_caching {
                let key = (w.state.fingerprint(), w.tid);
                if !self.table.insert(key) {
                    continue;
                }
            }
            self.work_items += 1;
            if self.work_items >= self.config.max_work {
                self.stop = true;
                return;
            }

            let mut path = w.path;
            path.push(w.tid);
            let state = match self.model.step(&w.state, w.tid) {
                Ok(s) => s,
                Err(e) => {
                    self.record_bug(e, path);
                    continue;
                }
            };
            self.states.insert(state.fingerprint());

            if self.model.enabled(&state, w.tid) {
                // The current thread continues; all others cost a
                // preemption and go to the next queue.
                for t in self.model.enabled_set(&state) {
                    if t != w.tid {
                        self.next_queue.push_back(WorkItem {
                            state: state.clone(),
                            tid: t,
                            path: path.clone(),
                        });
                    }
                }
                stack.push(WorkItem {
                    state,
                    tid: w.tid,
                    path,
                });
            } else {
                // Nonpreempting switch: explore every enabled thread now.
                for t in self.model.enabled_set(&state) {
                    stack.push(WorkItem {
                        state: state.clone(),
                        tid: t,
                        path: path.clone(),
                    });
                }
            }
        }
    }

    fn record_bug(&mut self, e: StepError, path: Vec<Tid>) {
        self.bugs.push(ExplicitBug {
            thread: e.thread(),
            message: e.message(),
            bound: self.bound,
            schedule: path,
        });
        if self.config.stop_on_first_bug {
            self.stop = true;
        }
    }
}

/// The number of reachable states of `model` (plain BFS over all
/// interleavings), the denominator for coverage percentages.
///
/// Also returns the set size at each BFS depth via the second element
/// when `return_frontier_profile` is set in future extensions; for now
/// just the count.
///
/// # Panics
///
/// Panics if the model's initial state cannot be constructed, or if the
/// state space exceeds `max_states`.
pub fn reachable_states(model: &Model, max_states: usize) -> usize {
    let initial = model
        .initial_state()
        .expect("initial state must be constructible");
    let mut seen: HashSet<VmState> = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);
    while let Some(state) = queue.pop_front() {
        for tid in model.enabled_set(&state) {
            if let Ok(next) = model.step(&state, tid) {
                if seen.insert(next.clone()) {
                    assert!(
                        seen.len() <= max_states,
                        "state space exceeds {max_states} states"
                    );
                    queue.push_back(next);
                }
            }
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use icb_core::search::{Search, SearchConfig};

    fn two_increments() -> Model {
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        for _ in 0..2 {
            m.thread("inc", |t| {
                let tmp = t.local();
                t.load(g, tmp);
                t.store(g, tmp + 1);
            });
        }
        m.build()
    }

    #[test]
    fn explicit_icb_covers_all_reachable_states() {
        let model = two_increments();
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        let total = reachable_states(&model, 1_000_000);
        assert_eq!(report.distinct_states, total);
    }

    #[test]
    fn explicit_and_stateless_agree_on_state_counts() {
        let model = two_increments();
        let explicit = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        let stateless = Search::over(&model)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(explicit.completed && stateless.completed);
        assert_eq!(explicit.distinct_states, stateless.distinct_states);
    }

    #[test]
    fn coverage_is_monotone_in_the_bound() {
        let model = two_increments();
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        let mut prev = 0;
        for b in &report.bound_history {
            assert!(b.cumulative_states >= prev);
            prev = b.cumulative_states;
        }
        assert_eq!(prev, report.distinct_states);
    }

    #[test]
    fn caching_prunes_work() {
        let model = two_increments();
        let cached = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        let uncached = ExplicitIcb::new(ExplicitConfig {
            state_caching: false,
            ..ExplicitConfig::default()
        })
        .run(&model);
        assert!(cached.completed && uncached.completed);
        assert_eq!(cached.distinct_states, uncached.distinct_states);
        assert!(cached.work_items <= uncached.work_items);
    }

    #[test]
    fn bug_bound_is_minimal() {
        // Assertion fails iff the two increments interleave (lost
        // update): requires exactly 1 preemption.
        let mut m = ModelBuilder::new();
        let g = m.global("g", 0);
        let done = m.global("done", 0);
        for _ in 0..2 {
            m.thread("inc", |t| {
                let tmp = t.local();
                t.load(g, tmp);
                t.store(g, tmp + 1);
                t.fetch_add(done, 1, tmp);
            });
        }
        m.thread("check", |t| {
            let v = t.local();
            t.wait_eq(done, 2);
            t.load(g, v);
            t.assert(v.eq(2), "lost update");
        });
        let model = m.build();
        let report = ExplicitIcb::new(ExplicitConfig {
            stop_on_first_bug: true,
            ..ExplicitConfig::default()
        })
        .run(&model);
        let bug = report.bugs.first().expect("bug found");
        assert_eq!(bug.bound, 1);
        assert_eq!(bug.message, "lost update");
        // The witness schedule must replay to the same failure in the
        // stateless adapter.
        let sched: icb_core::Schedule = bug.schedule.iter().copied().collect();
        let mut replay = icb_core::ReplayScheduler::new(sched);
        let r = icb_core::ControlledProgram::execute(&model, &mut replay, &mut icb_core::NullSink);
        assert!(matches!(
            r.outcome,
            icb_core::ExecutionOutcome::AssertionFailure { .. }
        ));
    }

    #[test]
    fn preemption_bound_limits_exploration() {
        let model = two_increments();
        let full = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        let bound0 = ExplicitIcb::new(ExplicitConfig {
            preemption_bound: Some(0),
            ..ExplicitConfig::default()
        })
        .run(&model);
        assert!(bound0.distinct_states < full.distinct_states);
        assert_eq!(bound0.completed_bound, Some(0));
        assert!(!bound0.completed);
    }
}
