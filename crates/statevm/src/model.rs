//! The model (program) and its explicit, hashable states.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use icb_core::Tid;

use crate::instr::{BlockPred, Instr, RmwOp};

/// Budget for consecutive local instructions within one step; exceeding
/// it means the model has a loop with no shared access (which a
/// terminating, communicating thread cannot have).
const LOCAL_FUEL: usize = 100_000;

/// One thread's code.
#[derive(Clone, Debug)]
pub struct ThreadCode {
    /// Thread name, for reports.
    pub name: String,
    /// The instructions.
    pub code: Vec<Instr>,
    /// Number of local slots.
    pub locals: usize,
}

/// A closed concurrent program for the explicit-state VM: fixed threads
/// over global scalars, arrays and locks — the ZING-analog modeling
/// language.
///
/// Build models with [`crate::ModelBuilder`].
#[derive(Clone, Debug)]
pub struct Model {
    pub(crate) globals: Vec<i64>,
    pub(crate) global_names: Vec<String>,
    pub(crate) arrays: Vec<Vec<i64>>,
    pub(crate) array_names: Vec<String>,
    pub(crate) locks: usize,
    pub(crate) threads: Vec<ThreadCode>,
    /// Step budget per execution when driven statelessly.
    pub(crate) max_steps: usize,
}

/// Why a step could not be completed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepError {
    /// An `Assert` failed.
    Assert {
        /// The thread whose assertion failed.
        thread: Tid,
        /// The assertion message.
        message: String,
    },
    /// A thread executed the local-instruction budget (100 000) without
    /// reaching a shared access — a model bug (non-communicating loop).
    LocalLoop {
        /// The looping thread.
        thread: Tid,
    },
}

impl StepError {
    /// The thread the error is attributed to.
    pub fn thread(&self) -> Tid {
        match self {
            StepError::Assert { thread, .. } | StepError::LocalLoop { thread } => *thread,
        }
    }

    /// Human-readable message.
    pub fn message(&self) -> String {
        match self {
            StepError::Assert { message, .. } => message.clone(),
            StepError::LocalLoop { .. } => "local instruction budget exceeded".to_string(),
        }
    }
}

/// Per-thread dynamic state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ThreadState {
    /// Program counter (always at a shared instruction or one past the
    /// end — states are normalized).
    pub pc: usize,
    /// Local variable values.
    pub locals: Vec<i64>,
}

/// A concrete VM state: everything the next transition can depend on.
///
/// States are normalized — every live thread's pc points at a shared
/// instruction — so structural equality coincides with semantic equality
/// and the state can serve directly as a model-checking cache key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VmState {
    /// Global scalar values.
    pub globals: Vec<i64>,
    /// Global array values.
    pub arrays: Vec<Vec<i64>>,
    /// Lock holders (`None` = free).
    pub locks: Vec<Option<u16>>,
    /// Per-thread state.
    pub threads: Vec<ThreadState>,
}

impl VmState {
    /// A stable 64-bit fingerprint of the state.
    ///
    /// `DefaultHasher::new()` uses fixed keys, so fingerprints are
    /// stable within a process run — all that coverage accounting needs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Model {
    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The thread names, indexed by [`Tid`].
    pub fn thread_names(&self) -> Vec<&str> {
        self.threads.iter().map(|t| t.name.as_str()).collect()
    }

    /// The global scalar names, indexed by declaration order.
    pub fn global_names(&self) -> Vec<&str> {
        self.global_names.iter().map(String::as_str).collect()
    }

    /// The global array names, indexed by declaration order.
    pub fn array_names(&self) -> Vec<&str> {
        self.array_names.iter().map(String::as_str).collect()
    }

    /// The per-execution step budget used by the stateless adapter.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// Sets the per-execution step budget.
    pub fn set_max_steps(&mut self, max_steps: usize) {
        self.max_steps = max_steps;
    }

    /// The initial (normalized) state.
    ///
    /// # Errors
    ///
    /// Fails if an assertion fires before any thread's first shared
    /// instruction.
    pub fn initial_state(&self) -> Result<VmState, StepError> {
        let mut state = VmState {
            globals: self.globals.clone(),
            arrays: self.arrays.clone(),
            locks: vec![None; self.locks],
            threads: self
                .threads
                .iter()
                .map(|t| ThreadState {
                    pc: 0,
                    locals: vec![0; t.locals],
                })
                .collect(),
        };
        for tid in 0..self.threads.len() {
            self.run_locals(&mut state, Tid(tid))?;
        }
        Ok(state)
    }

    /// Is the thread finished (pc past the end of its code)?
    pub fn is_finished(&self, state: &VmState, tid: Tid) -> bool {
        state.threads[tid.index()].pc >= self.threads[tid.index()].code.len()
    }

    /// Are all threads finished?
    pub fn all_finished(&self, state: &VmState) -> bool {
        (0..self.threads.len()).all(|t| self.is_finished(state, Tid(t)))
    }

    /// The shared instruction `tid` will execute next, if any.
    pub(crate) fn next_shared<'a>(&'a self, state: &VmState, tid: Tid) -> Option<&'a Instr> {
        let ts = &state.threads[tid.index()];
        self.threads[tid.index()].code.get(ts.pc)
    }

    /// Is `tid` enabled — alive with an executable next instruction?
    pub fn enabled(&self, state: &VmState, tid: Tid) -> bool {
        let Some(instr) = self.next_shared(state, tid) else {
            return false;
        };
        let locals = &state.threads[tid.index()].locals;
        match instr {
            Instr::Acquire { lock } => {
                let ix = lock.eval(locals) as usize;
                state.locks[ix].is_none()
            }
            Instr::BlockUntil { global, pred } => {
                let v = state.globals[global.index()];
                match pred {
                    BlockPred::NonZero => v != 0,
                    BlockPred::Zero => v == 0,
                    BlockPred::Eq(x) => v == *x,
                }
            }
            _ => true,
        }
    }

    /// The sorted enabled set.
    pub fn enabled_set(&self, state: &VmState) -> Vec<Tid> {
        (0..self.threads.len())
            .map(Tid)
            .filter(|&t| self.enabled(state, t))
            .collect()
    }

    /// Is the next instruction of `tid` potentially blocking (counts
    /// toward `B`)?
    pub fn next_is_blocking(&self, state: &VmState, tid: Tid) -> bool {
        self.next_shared(state, tid).is_some_and(Instr::is_blocking)
    }

    /// Is the next instruction of `tid` a designated fallible one (a
    /// `FailPoint`)? The stateless adapter consults the scheduler's
    /// fault decision for these steps.
    pub fn next_is_fallible(&self, state: &VmState, tid: Tid) -> bool {
        self.next_shared(state, tid).is_some_and(Instr::is_fallible)
    }

    /// Executes one step of `tid`: its next shared instruction plus the
    /// following run of local instructions (normalization).
    ///
    /// # Errors
    ///
    /// Propagates assertion failures and local-loop detection.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not enabled (callers must check), on lock
    /// misuse (releasing a lock not held — a model bug) or on an
    /// out-of-range array index.
    pub fn step(&self, state: &VmState, tid: Tid) -> Result<VmState, StepError> {
        let mut next = state.clone();
        self.step_in_place(&mut next, tid)?;
        Ok(next)
    }

    /// [`Model::step`] without the defensive clone (the stateless
    /// adapter advances a single state in place). `FailPoint`
    /// instructions take the fault-free branch; the explicit-state
    /// checker searches only the scheduling dimension.
    pub fn step_in_place(&self, state: &mut VmState, tid: Tid) -> Result<(), StepError> {
        self.step_in_place_faulted(state, tid, false)
    }

    /// [`Model::step_in_place`] with an explicit fault decision for a
    /// `FailPoint` step (`fault` is ignored by every other
    /// instruction). This is what the stateless adapter calls with the
    /// scheduler's answer.
    pub fn step_in_place_faulted(
        &self,
        state: &mut VmState,
        tid: Tid,
        fault: bool,
    ) -> Result<(), StepError> {
        debug_assert!(self.enabled(state, tid), "step on disabled thread {tid}");
        let code = &self.threads[tid.index()].code;
        let ts = &mut state.threads[tid.index()];
        let instr = &code[ts.pc];
        match instr {
            Instr::LoadGlobal { global, dst } => {
                ts.locals[dst.index()] = state.globals[global.index()];
            }
            Instr::StoreGlobal { global, src } => {
                state.globals[global.index()] = src.eval(&ts.locals);
            }
            Instr::LoadArr { arr, idx, dst } => {
                let i = idx.eval(&ts.locals) as usize;
                ts.locals[dst.index()] = state.arrays[arr.index()][i];
            }
            Instr::StoreArr { arr, idx, src } => {
                let i = idx.eval(&ts.locals) as usize;
                let v = src.eval(&ts.locals);
                state.arrays[arr.index()][i] = v;
            }
            Instr::Acquire { lock } => {
                let ix = lock.eval(&ts.locals) as usize;
                debug_assert!(state.locks[ix].is_none());
                state.locks[ix] = Some(tid.index() as u16);
            }
            Instr::Release { lock } => {
                let ix = lock.eval(&ts.locals) as usize;
                assert_eq!(
                    state.locks[ix],
                    Some(tid.index() as u16),
                    "model bug: {tid} releases lock {ix} it does not hold"
                );
                state.locks[ix] = None;
            }
            Instr::Rmw {
                global,
                op,
                rhs,
                dst,
            } => {
                let old = state.globals[global.index()];
                let r = rhs.eval(&ts.locals);
                state.globals[global.index()] = match op {
                    RmwOp::Add => old.wrapping_add(r),
                    RmwOp::Sub => old.wrapping_sub(r),
                    RmwOp::Xchg => r,
                };
                ts.locals[dst.index()] = old;
            }
            Instr::Cas {
                global,
                expected,
                new,
                dst,
            } => {
                let cur = state.globals[global.index()];
                if cur == expected.eval(&ts.locals) {
                    state.globals[global.index()] = new.eval(&ts.locals);
                    ts.locals[dst.index()] = 1;
                } else {
                    ts.locals[dst.index()] = 0;
                }
            }
            Instr::BlockUntil { .. } => {
                // Enabledness already guaranteed the predicate; the
                // access itself has no effect beyond the read.
            }
            Instr::Yield => {}
            Instr::FailPoint { dst, .. } => {
                ts.locals[dst.index()] = fault as i64;
            }
            local => unreachable!("normalized pc points at a shared instruction, found {local:?}"),
        }
        state.threads[tid.index()].pc += 1;
        self.run_locals(state, tid)
    }

    /// Advances `tid` through local instructions until its pc rests on a
    /// shared instruction or past the end.
    fn run_locals(&self, state: &mut VmState, tid: Tid) -> Result<(), StepError> {
        let code = &self.threads[tid.index()].code;
        let ts = &mut state.threads[tid.index()];
        let mut fuel = LOCAL_FUEL;
        while let Some(instr) = code.get(ts.pc) {
            if instr.is_shared() {
                return Ok(());
            }
            if fuel == 0 {
                return Err(StepError::LocalLoop { thread: tid });
            }
            fuel -= 1;
            match instr {
                Instr::Compute { dst, expr } => {
                    ts.locals[dst.index()] = expr.eval(&ts.locals);
                    ts.pc += 1;
                }
                Instr::Jump { target } => ts.pc = *target,
                Instr::JumpIf { cond, target } => {
                    if cond.eval(&ts.locals) != 0 {
                        ts.pc = *target;
                    } else {
                        ts.pc += 1;
                    }
                }
                Instr::Assert { cond, msg } => {
                    if cond.eval(&ts.locals) == 0 {
                        return Err(StepError::Assert {
                            thread: tid,
                            message: msg.clone(),
                        });
                    }
                    ts.pc += 1;
                }
                Instr::Halt => {
                    ts.pc = code.len();
                }
                shared => unreachable!("{shared:?} classified as local"),
            }
        }
        Ok(())
    }
}
