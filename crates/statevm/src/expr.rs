//! Pure expressions over a thread's local variables.
//!
//! Expressions are side-effect-free and touch no shared state, so
//! evaluating them is *invisible* to other threads: the VM executes them
//! as part of the enclosing step, never creating a scheduling point —
//! each step performs exactly one shared-variable access (Section 2 of
//! the paper).

use std::fmt;
use std::ops::{Add, Mul, Neg, Not, Rem, Sub};

/// A local variable slot of one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Local(pub(crate) usize);

impl Local {
    /// The slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A pure expression over locals and constants.
///
/// Booleans are represented as integers (`0` = false, nonzero = true),
/// matching the ZING modeling language's C heritage.
///
/// # Examples
///
/// ```
/// use icb_statevm::Expr;
/// let e = (Expr::konst(2) + Expr::konst(3)).eq(Expr::konst(5));
/// assert_eq!(e.eval(&[]), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// A local variable read.
    Local(Local),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean remainder (always non-negative for positive modulus).
    Mod(Box<Expr>, Box<Expr>),
    /// Truncated division.
    Div(Box<Expr>, Box<Expr>),
    /// Equality test (1/0).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality test (1/0).
    Ne(Box<Expr>, Box<Expr>),
    /// Less-than test (1/0).
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal test (1/0).
    Le(Box<Expr>, Box<Expr>),
    /// Logical and (short-circuit is unobservable: exprs are pure).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    NotE(Box<Expr>),
    /// Arithmetic negation.
    NegE(Box<Expr>),
}

impl Expr {
    /// A constant expression.
    pub fn konst(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Evaluates the expression over a thread's locals.
    ///
    /// # Panics
    ///
    /// Panics if a [`Local`] is out of range for `locals` (a model
    /// construction bug) or on division by zero.
    pub fn eval(&self, locals: &[i64]) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Local(l) => locals[l.0],
            Expr::Add(a, b) => a.eval(locals).wrapping_add(b.eval(locals)),
            Expr::Sub(a, b) => a.eval(locals).wrapping_sub(b.eval(locals)),
            Expr::Mul(a, b) => a.eval(locals).wrapping_mul(b.eval(locals)),
            Expr::Mod(a, b) => a.eval(locals).rem_euclid(b.eval(locals)),
            Expr::Div(a, b) => a.eval(locals) / b.eval(locals),
            Expr::Eq(a, b) => (a.eval(locals) == b.eval(locals)) as i64,
            Expr::Ne(a, b) => (a.eval(locals) != b.eval(locals)) as i64,
            Expr::Lt(a, b) => (a.eval(locals) < b.eval(locals)) as i64,
            Expr::Le(a, b) => (a.eval(locals) <= b.eval(locals)) as i64,
            Expr::And(a, b) => ((a.eval(locals) != 0) && (b.eval(locals) != 0)) as i64,
            Expr::Or(a, b) => ((a.eval(locals) != 0) || (b.eval(locals) != 0)) as i64,
            Expr::NotE(a) => (a.eval(locals) == 0) as i64,
            Expr::NegE(a) => a.eval(locals).wrapping_neg(),
        }
    }

    /// `self == other` (1/0).
    pub fn eq(self, other: impl Into<Expr>) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other.into()))
    }

    /// `self != other` (1/0).
    pub fn ne(self, other: impl Into<Expr>) -> Expr {
        Expr::Ne(Box::new(self), Box::new(other.into()))
    }

    /// `self < other` (1/0).
    pub fn lt(self, other: impl Into<Expr>) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other.into()))
    }

    /// `self <= other` (1/0).
    pub fn le(self, other: impl Into<Expr>) -> Expr {
        Expr::Le(Box::new(self), Box::new(other.into()))
    }

    /// `self > other` (1/0).
    pub fn gt(self, other: impl Into<Expr>) -> Expr {
        other.into().lt(self)
    }

    /// `self >= other` (1/0).
    pub fn ge(self, other: impl Into<Expr>) -> Expr {
        other.into().le(self)
    }

    /// Logical and.
    pub fn and(self, other: impl Into<Expr>) -> Expr {
        Expr::And(Box::new(self), Box::new(other.into()))
    }

    /// Logical or.
    pub fn or(self, other: impl Into<Expr>) -> Expr {
        Expr::Or(Box::new(self), Box::new(other.into()))
    }

    /// Euclidean remainder.
    pub fn rem_euclid(self, other: impl Into<Expr>) -> Expr {
        Expr::Mod(Box::new(self), Box::new(other.into()))
    }

    /// The highest local slot this expression reads, if any — used by
    /// the model builder's validation.
    pub fn max_local(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Local(l) => Some(l.0),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Mod(a, b)
            | Expr::Div(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => a.max_local().max(b.max_local()),
            Expr::NotE(a) | Expr::NegE(a) => a.max_local(),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Const(v)
    }
}

impl From<Local> for Expr {
    fn from(l: Local) -> Expr {
        Expr::Local(l)
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl<R: Into<Expr>> $trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs.into()))
            }
        }
        impl $trait<Expr> for Local {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(self.into()), Box::new(rhs))
            }
        }
        impl $trait<i64> for Local {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                Expr::$variant(Box::new(self.into()), Box::new(Expr::Const(rhs)))
            }
        }
        impl $trait<Local> for Local {
            type Output = Expr;
            fn $method(self, rhs: Local) -> Expr {
                Expr::$variant(Box::new(self.into()), Box::new(rhs.into()))
            }
        }
    };
}

binop!(Add, add, Add);
binop!(Sub, sub, Sub);
binop!(Mul, mul, Mul);
binop!(Rem, rem, Mod);

impl Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::NotE(Box::new(self))
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::NegE(Box::new(self))
    }
}

impl Local {
    /// `self == other` (1/0).
    pub fn eq(self, other: impl Into<Expr>) -> Expr {
        Expr::from(self).eq(other)
    }

    /// `self != other` (1/0).
    pub fn ne(self, other: impl Into<Expr>) -> Expr {
        Expr::from(self).ne(other)
    }

    /// `self < other` (1/0).
    pub fn lt(self, other: impl Into<Expr>) -> Expr {
        Expr::from(self).lt(other)
    }

    /// `self <= other` (1/0).
    pub fn le(self, other: impl Into<Expr>) -> Expr {
        Expr::from(self).le(other)
    }

    /// `self > other` (1/0).
    pub fn gt(self, other: impl Into<Expr>) -> Expr {
        Expr::from(self).gt(other)
    }

    /// `self >= other` (1/0).
    pub fn ge(self, other: impl Into<Expr>) -> Expr {
        Expr::from(self).ge(other)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Local(l) => write!(f, "l{}", l.0),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Eq(a, b) => write!(f, "({a} == {b})"),
            Expr::Ne(a, b) => write!(f, "({a} != {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::NotE(a) => write!(f, "!{a}"),
            Expr::NegE(a) => write!(f, "-{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let l0 = Local(0);
        let e = l0 + 3;
        assert_eq!(e.eval(&[4]), 7);
        let e = (Expr::from(l0) - 1) * Expr::konst(2);
        assert_eq!(e.eval(&[4]), 6);
        assert_eq!((Expr::konst(-7)).rem_euclid(3).eval(&[]), 2);
    }

    #[test]
    fn comparisons_yield_zero_one() {
        let l = Local(0);
        assert_eq!(l.lt(5).eval(&[4]), 1);
        assert_eq!(l.lt(5).eval(&[5]), 0);
        assert_eq!(l.ge(5).eval(&[5]), 1);
        assert_eq!(l.eq(4).eval(&[4]), 1);
        assert_eq!(l.ne(4).eval(&[4]), 0);
        assert_eq!(l.gt(3).eval(&[4]), 1);
        assert_eq!(l.le(4).eval(&[4]), 1);
    }

    #[test]
    fn logic() {
        let t = Expr::konst(1);
        let f = Expr::konst(0);
        assert_eq!(t.clone().and(f.clone()).eval(&[]), 0);
        assert_eq!(t.clone().or(f.clone()).eval(&[]), 1);
        assert_eq!((!f).eval(&[]), 1);
        assert_eq!((-t).eval(&[]), -1);
    }

    #[test]
    fn display_round_trip_shape() {
        let l = Local(1);
        let e = (l + 1).eq(Expr::konst(2));
        assert_eq!(e.to_string(), "((l1 + 1) == 2)");
    }

    #[test]
    fn wrapping_semantics() {
        let e = Expr::konst(i64::MAX) + Expr::konst(1);
        assert_eq!(e.eval(&[]), i64::MIN);
    }
}
