//! The Bluetooth PnP driver benchmark.
//!
//! A sample Bluetooth Plug-and-Play driver stripped of hardware code,
//! keeping the synchronization needed for PnP stop: a *pending I/O*
//! counter biased by 1, a `stoppingFlag`, a `stoppingEvent`, and a
//! `stopped` flag. Worker threads enter the driver by incrementing
//! `pendingIo` (guarded by `stoppingFlag`); the stop thread raises the
//! flag, releases its bias count, waits for in-flight I/O to drain, and
//! marks the driver stopped.
//!
//! The known bug (Table 2: exposed at context bound 1): in
//! `io_increment`, the flag check and the increment are not atomic —
//!
//! ```text
//! if stoppingFlag: return stopped      // worker reads false
//!      << preemption: stop thread runs to completion >>
//! pendingIo++                          // driver already stopped!
//! ```
//!
//! so a worker can operate on a stopped driver, asserting
//! "driver used after stop".

use std::sync::Arc;

use icb_runtime::sync::{AtomicBool, AtomicI64, Event};
use icb_runtime::{thread, RuntimeProgram};
use icb_statevm::{Model, ModelBuilder};

/// Which version of the driver to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BluetoothVariant {
    /// The paper's buggy driver: non-atomic check-then-increment.
    Buggy,
    /// A corrected driver: the increment happens before the flag check
    /// and is rolled back if the driver is stopping.
    Fixed,
}

/// Driver state shared between the stopper and the workers.
struct Driver {
    stopping_flag: AtomicBool,
    stopped: AtomicBool,
    /// Biased by 1: the bias is released by the stop thread.
    pending_io: AtomicI64,
    stopping_event: Event,
}

impl Driver {
    fn new() -> Self {
        Driver {
            stopping_flag: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            pending_io: AtomicI64::new(1),
            stopping_event: Event::manual_reset(false),
        }
    }

    /// Tries to enter the driver. Returns `true` on success.
    fn io_increment(&self, variant: BluetoothVariant) -> bool {
        match variant {
            BluetoothVariant::Buggy => {
                if self.stopping_flag.load() {
                    return false;
                }
                // BUG: a preemption here lets the stop thread drain
                // pendingIo and stop the driver.
                self.pending_io.fetch_add(1);
                true
            }
            BluetoothVariant::Fixed => {
                // Increment first; the stop thread cannot observe zero
                // while we are inside.
                self.pending_io.fetch_add(1);
                if self.stopping_flag.load() {
                    self.io_decrement();
                    return false;
                }
                true
            }
        }
    }

    fn io_decrement(&self) {
        if self.pending_io.fetch_sub(1) == 1 {
            self.stopping_event.set();
        }
    }

    /// A worker performing one driver operation (`BCSP_PnpAdd`).
    fn pnp_add(&self, variant: BluetoothVariant) {
        if self.io_increment(variant) {
            // Inside the driver: it must not be stopped.
            assert!(!self.stopped.load(), "driver used after stop");
            self.io_decrement();
        }
    }

    /// The stop routine (`BCSP_PnpStop`).
    fn pnp_stop(&self) {
        self.stopping_flag.store(true);
        self.io_decrement(); // release the bias count
        self.stopping_event.wait(); // wait for in-flight I/O
        self.stopped.store(true);
    }
}

/// The paper's test driver: `workers` threads perform operations while
/// a stop thread stops the driver (3 threads total with the default
/// `workers = 2`; the harness main thread only spawns and joins).
pub fn bluetooth_program(variant: BluetoothVariant, workers: usize) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let driver = Arc::new(Driver::new());
        let stopper = {
            let driver = Arc::clone(&driver);
            thread::spawn(move || driver.pnp_stop())
        };
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let driver = Arc::clone(&driver);
                thread::spawn(move || driver.pnp_add(variant))
            })
            .collect();
        stopper.join();
        for h in handles {
            h.join();
        }
    })
}

/// The same driver as an explicit-state VM model (for exact state
/// counting in the Figure 4 experiment).
///
/// Globals mirror the runtime version; the `stoppingEvent` is a plain
/// global waited on with a blocking read.
pub fn bluetooth_model(variant: BluetoothVariant, workers: usize) -> Model {
    let mut m = ModelBuilder::new();
    let stopping_flag = m.global("stoppingFlag", 0);
    let stopped = m.global("stopped", 0);
    let pending_io = m.global("pendingIo", 1);
    let stopping_event = m.global("stoppingEvent", 0);

    for _ in 0..workers {
        m.thread("worker", |t| {
            let flag = t.local();
            let old = t.local();
            let stop = t.local();
            let skip = t.new_label();
            let exit = t.new_label();
            match variant {
                BluetoothVariant::Buggy => {
                    t.load(stopping_flag, flag);
                    t.jump_if(flag.ne(0), exit);
                    t.fetch_add(pending_io, 1, old);
                }
                BluetoothVariant::Fixed => {
                    t.fetch_add(pending_io, 1, old);
                    t.load(stopping_flag, flag);
                    t.jump_unless(flag.ne(0), skip);
                    // Roll back and leave.
                    t.fetch_sub(pending_io, 1, old);
                    t.jump_if(old.ne(1), exit);
                    t.store(stopping_event, 1);
                    t.jump(exit);
                }
            }
            t.place(skip);
            // Inside the driver: must not be stopped.
            t.load(stopped, stop);
            t.assert(stop.eq(0), "driver used after stop");
            // io_decrement
            t.fetch_sub(pending_io, 1, old);
            t.jump_if(old.ne(1), exit);
            t.store(stopping_event, 1);
            t.place(exit);
        });
    }
    m.thread("stopper", |t| {
        let old = t.local();
        let skip = t.new_label();
        t.store(stopping_flag, 1);
        // io_decrement (release the bias count)
        t.fetch_sub(pending_io, 1, old);
        t.jump_if(old.ne(1), skip);
        t.store(stopping_event, 1);
        t.place(skip);
        t.wait_nonzero(stopping_event);
        t.store(stopped, 1);
    });
    m.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::search::{Search, SearchConfig};

    fn minimal_bug_report(
        program: &(dyn icb_core::ControlledProgram + Sync),
        budget: usize,
    ) -> Option<icb_core::search::BugReport> {
        Search::over(program)
            .config(SearchConfig {
                max_executions: Some(budget),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .bugs
            .into_iter()
            .next()
    }
    use icb_statevm::{ExplicitConfig, ExplicitIcb};

    #[test]
    fn buggy_driver_fails_with_one_preemption() {
        let program = bluetooth_program(BluetoothVariant::Buggy, 2);
        let bug = minimal_bug_report(&program, 200_000).expect("known bug");
        assert_eq!(bug.preemptions, 1);
        match &bug.outcome {
            icb_core::ExecutionOutcome::AssertionFailure { message, .. } => {
                assert!(message.contains("after stop"), "got: {message}");
            }
            other => panic!("expected assertion failure, got {other}"),
        }
    }

    #[test]
    fn fixed_driver_is_correct_up_to_bound_two() {
        // Exhausting the runtime version unbounded is feasible but slow
        // under the debug profile; bound 2 covers every execution the
        // buggy variant needs to fail (the VM test below checks the
        // fixed model exhaustively).
        let program = bluetooth_program(BluetoothVariant::Fixed, 2);
        let config = SearchConfig {
            preemption_bound: Some(2),
            ..SearchConfig::default()
        };
        let report = Search::over(&program).config(config).run().unwrap();
        assert_eq!(report.completed_bound, Some(2));
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn vm_model_agrees_on_the_bug_bound() {
        let model = bluetooth_model(BluetoothVariant::Buggy, 2);
        let report = ExplicitIcb::new(ExplicitConfig {
            stop_on_first_bug: true,
            ..ExplicitConfig::default()
        })
        .run(&model);
        let bug = report.bugs.first().expect("bug in model");
        assert_eq!(bug.bound, 1);
    }

    #[test]
    fn vm_fixed_model_is_correct() {
        let model = bluetooth_model(BluetoothVariant::Fixed, 2);
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn single_worker_bug_still_needs_one_preemption() {
        let program = bluetooth_program(BluetoothVariant::Buggy, 1);
        let bug = minimal_bug_report(&program, 100_000).expect("bug");
        assert_eq!(bug.preemptions, 1);
    }
}
