//! A catalog of every benchmark and seeded bug, for the experiment
//! harness (Tables 1 and 2, Figures 1–6).

use std::fmt;

use icb_core::{ControlledProgram, ExecutionResult, Scheduler, SearchObserver, StateSink};
use icb_runtime::RuntimeProgram;
use icb_statevm::Model;

use crate::ape::{ape_model, ape_program, ApeVariant};
use crate::bluetooth::{bluetooth_model, bluetooth_program, BluetoothVariant};
use crate::dryad::{dryad_model, dryad_program, DryadVariant};
use crate::faultinj::{
    faultinj_model, retry_lock_program, spurious_consumer_program, ConsumerVariant, RetryVariant,
};
use crate::filesystem::{filesystem_model, filesystem_program, FsParams};
use crate::txnmgr::{txnmgr_model, TxnVariant};
use crate::wsq::{wsq_model, wsq_program, WsqVariant};

/// A program for either checker.
pub enum AnyProgram {
    /// A native program for the stateless runtime (CHESS side).
    Runtime(RuntimeProgram),
    /// An explicit-state VM model (ZING side).
    Vm(Model),
}

impl ControlledProgram for AnyProgram {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        match self {
            AnyProgram::Runtime(p) => p.execute(scheduler, sink),
            AnyProgram::Vm(m) => m.execute(scheduler, sink),
        }
    }

    fn execute_observed(
        &self,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn StateSink,
        observer: &mut dyn SearchObserver,
    ) -> ExecutionResult {
        match self {
            AnyProgram::Runtime(p) => p.execute_observed(scheduler, sink, observer),
            AnyProgram::Vm(m) => m.execute_observed(scheduler, sink, observer),
        }
    }

    fn fingerprints_are_exact(&self) -> bool {
        match self {
            AnyProgram::Runtime(p) => p.fingerprints_are_exact(),
            AnyProgram::Vm(m) => m.fingerprints_are_exact(),
        }
    }
}

/// A stable identity hash for `program`, used to key its on-disk cache
/// directory.
///
/// The hash covers the benchmark name, the bug variant, and — for VM
/// models — the full disassembly, so editing a model's instruction
/// stream invalidates its cached exploration. Runtime programs are
/// closures the harness cannot introspect, so their identity is purely
/// name-based: renaming is the only way to tell the cache a runtime
/// workload changed. (The cache is heuristic-only for those anyway.)
pub fn program_identity(benchmark: &str, bug: Option<&str>, program: &AnyProgram) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"icb-workload\0");
    bytes.extend_from_slice(benchmark.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(bug.unwrap_or("correct").as_bytes());
    bytes.push(0);
    match program {
        AnyProgram::Runtime(_) => bytes.extend_from_slice(b"runtime"),
        AnyProgram::Vm(m) => bytes.extend_from_slice(m.disasm().as_bytes()),
    }
    icb_core::hash::fingerprint_bytes(&bytes)
}

impl fmt::Debug for AnyProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyProgram::Runtime(_) => write!(f, "AnyProgram::Runtime"),
            AnyProgram::Vm(_) => write!(f, "AnyProgram::Vm"),
        }
    }
}

/// One seeded (or known) bug of a benchmark.
#[derive(Debug)]
pub struct BugSpec {
    /// Short identifier of the bug.
    pub name: &'static str,
    /// The minimal preemption bound of this reimplementation's bug, as
    /// verified by the workload test suites.
    pub expected_bound: usize,
    /// The minimal fault bound of the bug: how many injected faults its
    /// minimum-`(preemptions, faults)` witness needs. Zero for every
    /// bug of the paper's inventory; the harness must search with
    /// `fault_bound >= expected_faults` to find the bug at all.
    pub expected_faults: usize,
    /// Builds the buggy program.
    pub build: fn() -> AnyProgram,
}

/// One benchmark of the paper's evaluation.
#[derive(Debug)]
pub struct BenchmarkInfo {
    /// Benchmark name as in Table 1.
    pub name: &'static str,
    /// Threads in the paper's test driver (Table 1).
    pub paper_threads: usize,
    /// LOC reported in Table 1, for side-by-side display.
    pub paper_loc: usize,
    /// Builds the correct (bug-free) program.
    pub correct: fn() -> AnyProgram,
    /// The correct program as a VM model, when one exists (exact state
    /// counting for the coverage figures).
    pub vm_model: Option<fn() -> Model>,
    /// The seeded bugs.
    pub bugs: Vec<BugSpec>,
}

/// Every benchmark, in Table 1 order.
pub fn all_benchmarks() -> Vec<BenchmarkInfo> {
    vec![
        BenchmarkInfo {
            name: "Bluetooth",
            paper_threads: 3,
            paper_loc: 400,
            correct: || AnyProgram::Runtime(bluetooth_program(BluetoothVariant::Fixed, 2)),
            vm_model: Some(|| bluetooth_model(BluetoothVariant::Fixed, 2)),
            bugs: vec![BugSpec {
                name: "check-then-increment",
                expected_bound: 1,
                expected_faults: 0,
                build: || AnyProgram::Runtime(bluetooth_program(BluetoothVariant::Buggy, 2)),
            }],
        },
        BenchmarkInfo {
            name: "File System Model",
            paper_threads: 4,
            paper_loc: 84,
            correct: || AnyProgram::Runtime(filesystem_program(FsParams::default())),
            vm_model: Some(|| filesystem_model(FsParams::default())),
            bugs: Vec::new(),
        },
        BenchmarkInfo {
            name: "Work Stealing Q.",
            paper_threads: 2,
            paper_loc: 1266,
            correct: || AnyProgram::Runtime(wsq_program(WsqVariant::Correct, 3, 2)),
            vm_model: Some(|| wsq_model(WsqVariant::Correct, 3, 2)),
            bugs: vec![
                BugSpec {
                    name: "tail-publish-first",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(wsq_program(WsqVariant::TailPublishFirst, 3, 2)),
                },
                BugSpec {
                    name: "missing-tail-restore",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || {
                        AnyProgram::Runtime(wsq_program(WsqVariant::MissingTailRestore, 3, 2))
                    },
                },
                BugSpec {
                    name: "non-atomic-steal",
                    expected_bound: 2,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(wsq_program(WsqVariant::NonAtomicSteal, 3, 2)),
                },
            ],
        },
        BenchmarkInfo {
            name: "Transaction Manager",
            paper_threads: 2,
            paper_loc: 7000,
            correct: || AnyProgram::Vm(txnmgr_model(TxnVariant::Correct)),
            vm_model: Some(|| txnmgr_model(TxnVariant::Correct)),
            bugs: vec![
                BugSpec {
                    name: "commit-toctou",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || AnyProgram::Vm(txnmgr_model(TxnVariant::CommitToctou)),
                },
                BugSpec {
                    name: "unlocked-scan",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || AnyProgram::Vm(txnmgr_model(TxnVariant::UnlockedScan)),
                },
                BugSpec {
                    name: "torn-flush",
                    expected_bound: 2,
                    expected_faults: 0,
                    build: || AnyProgram::Vm(txnmgr_model(TxnVariant::TornFlush)),
                },
            ],
        },
        BenchmarkInfo {
            name: "APE",
            paper_threads: 3,
            paper_loc: 18947,
            correct: || AnyProgram::Runtime(ape_program(ApeVariant::Correct, 2)),
            vm_model: Some(|| ape_model(2)),
            bugs: vec![
                BugSpec {
                    name: "missing-join",
                    expected_bound: 0,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(ape_program(ApeVariant::MissingJoin, 2)),
                },
                BugSpec {
                    name: "poison-shortcut",
                    expected_bound: 0,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(ape_program(ApeVariant::PoisonShortcut, 2)),
                },
                BugSpec {
                    name: "untracked-insert",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(ape_program(ApeVariant::UntrackedInsert, 2)),
                },
                BugSpec {
                    name: "non-atomic-release",
                    expected_bound: 2,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(ape_program(ApeVariant::NonAtomicRelease, 2)),
                },
            ],
        },
        BenchmarkInfo {
            name: "Dryad Channels",
            paper_threads: 5,
            paper_loc: 16036,
            correct: || AnyProgram::Runtime(dryad_program(DryadVariant::Correct, 4, 2)),
            vm_model: Some(|| dryad_model(2, 2)),
            bugs: vec![
                BugSpec {
                    name: "stop-jumps-queue",
                    expected_bound: 0,
                    expected_faults: 0,
                    build: || {
                        AnyProgram::Runtime(dryad_program(DryadVariant::StopJumpsQueue, 2, 2))
                    },
                },
                BugSpec {
                    name: "close-no-wait (Fig. 3 UAF)",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(dryad_program(DryadVariant::CloseNoWait, 2, 2)),
                },
                BugSpec {
                    name: "ack-before-alert",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || {
                        AnyProgram::Runtime(dryad_program(DryadVariant::AckBeforeAlert, 2, 2))
                    },
                },
                BugSpec {
                    name: "unsync-stats",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || AnyProgram::Runtime(dryad_program(DryadVariant::UnsyncStats, 2, 2)),
                },
                BugSpec {
                    name: "unlocked-untrack",
                    expected_bound: 1,
                    expected_faults: 0,
                    build: || {
                        AnyProgram::Runtime(dryad_program(DryadVariant::UnlockedUntrack, 2, 2))
                    },
                },
            ],
        },
        // Extension beyond the paper's Table 1: fault-dependent bugs,
        // invisible to every purely preemption-bounded search (see
        // DESIGN.md §12). `paper_loc` is 0: there is no Table 1 row.
        BenchmarkInfo {
            name: "Fault Injection",
            paper_threads: 3,
            paper_loc: 0,
            correct: || AnyProgram::Runtime(retry_lock_program(RetryVariant::Correct, 2)),
            vm_model: Some(|| faultinj_model(2)),
            bugs: vec![
                BugSpec {
                    name: "shed-on-try-lock-failure",
                    expected_bound: 0,
                    expected_faults: 1,
                    build: || {
                        AnyProgram::Runtime(retry_lock_program(RetryVariant::ShedOnFailure, 2))
                    },
                },
                BugSpec {
                    name: "missing-spurious-recheck",
                    expected_bound: 0,
                    expected_faults: 1,
                    build: || {
                        AnyProgram::Runtime(spurious_consumer_program(ConsumerVariant::IfNoRecheck))
                    },
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_paper_inventory() {
        let benches = all_benchmarks();
        // Table 1's six benchmarks plus the fault-injection extension.
        assert_eq!(benches.len(), 7);
        let paper_bugs: usize = benches
            .iter()
            .flat_map(|b| &b.bugs)
            .filter(|bug| bug.expected_faults == 0)
            .count();
        // 16 paper bugs: 7 previously known (Bluetooth 1 + WSQ 3 +
        // TxnMgr 3) plus the 9 found in APE (4) and Dryad (5). The
        // paper's Table 2 caption says "14", but its own rows sum to 16
        // (and the text's 7 known + 9 new = 16); we reproduce the rows.
        assert_eq!(paper_bugs, 16);
        // Every bug is reachable within 2 preemptions — the paper's
        // headline claim ("each of which was exposed by an execution
        // with at most 2 preempting context switches" for the new ones).
        assert!(benches
            .iter()
            .flat_map(|b| &b.bugs)
            .all(|bug| bug.expected_bound <= 2));
        // The extension's bugs need faults but no preemptions at all:
        // the fault dimension is orthogonal to the preemption dimension.
        let fault_bugs: Vec<_> = benches
            .iter()
            .flat_map(|b| &b.bugs)
            .filter(|bug| bug.expected_faults > 0)
            .collect();
        assert_eq!(fault_bugs.len(), 2);
        assert!(fault_bugs
            .iter()
            .all(|bug| bug.expected_bound == 0 && bug.expected_faults == 1));
    }

    #[test]
    fn every_program_builds_and_runs_one_execution() {
        for bench in all_benchmarks() {
            let program = (bench.correct)();
            let mut sched = icb_core::ReplayScheduler::new(Default::default());
            let result = program.execute(&mut sched, &mut icb_core::NullSink);
            assert!(
                !result.outcome.is_bug(),
                "{}: default schedule must be clean, got {}",
                bench.name,
                result.outcome
            );
            for bug in &bench.bugs {
                let program = (bug.build)();
                let mut sched = icb_core::ReplayScheduler::new(Default::default());
                // The default (preemption-free, lowest-id) schedule may
                // or may not expose bound-0 bugs; it must at least run.
                let _ = program.execute(&mut sched, &mut icb_core::NullSink);
            }
        }
    }

    #[test]
    fn bound_distribution_matches_the_papers_shape() {
        let benches = all_benchmarks();
        let mut by_bound = [0usize; 4];
        for bug in benches
            .iter()
            .flat_map(|b| &b.bugs)
            .filter(|bug| bug.expected_faults == 0)
        {
            by_bound[bug.expected_bound.min(3)] += 1;
        }
        // Paper's Table 2 column sums: 3 at bound 0, 7 at bound 1, 5 at
        // bound 2, 1 at bound 3. Ours: the same number of bugs with the
        // same "small bounds suffice" shape.
        assert_eq!(by_bound.iter().sum::<usize>(), 16);
        assert!(by_bound[0] >= 2);
        assert!(by_bound[1] >= 5);
        assert!(by_bound[2] >= 2);
    }
}
