//! The file-system model benchmark.
//!
//! A simplified model of a file system derived from Figure 7 of
//! Flanagan & Godefroid's dynamic partial-order reduction paper
//! (POPL 2005), as used in the ICB paper's evaluation: processes create
//! files, allocating an inode and a disk block, with a lock per inode
//! and a lock per block.
//!
//! Each thread `tid` works on inode `tid % num_inodes`. If the inode is
//! free, the thread searches for a free block starting at
//! `(inode * 2) % num_blocks`, marks it busy under the block lock, and
//! records it in the inode. The model is race-free and assertion-free;
//! the paper uses it purely for state-coverage measurements (Figure 4:
//! the entire state space is covered by executions with at most 4
//! preemptions).
//!
//! The defaults here (`4` threads, `2` inodes, `4` blocks) shrink the
//! paper's `NUMINODE = 32 / NUMBLOCKS = 26` so exhaustive exploration
//! stays laptop-sized while keeping both contention patterns: two
//! threads share each inode lock, and allocation scans share block
//! locks.

use std::sync::Arc;

use icb_runtime::sync::Mutex;
use icb_runtime::{thread, DataVar, RuntimeProgram};
use icb_statevm::{Model, ModelBuilder};

/// Parameters of the file-system model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsParams {
    /// Number of creator threads.
    pub threads: usize,
    /// Number of inodes (each protected by its own lock).
    pub inodes: usize,
    /// Number of disk blocks (each protected by its own lock).
    pub blocks: usize,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            threads: 4,
            inodes: 2,
            blocks: 4,
        }
    }
}

/// The file-system model as a native runtime program.
///
/// Shared state: `inode[i]` (0 = free, else block+1) under `locki[i]`;
/// `busy[b]` under `lockb[b]`. The final consistency assertion checks
/// that every allocated inode points at a busy block and no block is
/// double-allocated.
pub fn filesystem_program(params: FsParams) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let locki: Arc<Vec<Mutex<i64>>> =
            Arc::new((0..params.inodes).map(|_| Mutex::new(0)).collect());
        let lockb: Arc<Vec<Mutex<bool>>> =
            Arc::new((0..params.blocks).map(|_| Mutex::new(false)).collect());
        let handles: Vec<_> = (0..params.threads)
            .map(|tid| {
                let locki = Arc::clone(&locki);
                let lockb = Arc::clone(&lockb);
                thread::spawn(move || {
                    let i = tid % params.inodes;
                    let mut inode = locki[i].lock();
                    if *inode == 0 {
                        let mut b = (i * 2) % params.blocks;
                        loop {
                            let mut busy = lockb[b].lock();
                            if !*busy {
                                *busy = true;
                                *inode = (b + 1) as i64;
                                break;
                            }
                            drop(busy);
                            b = (b + 1) % params.blocks;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        // Consistency: allocated inodes point at distinct busy blocks.
        let seen = DataVar::new(vec![false; params.blocks]);
        for i in 0..params.inodes {
            let v = *locki[i].lock();
            if v != 0 {
                let b = (v - 1) as usize;
                assert!(*lockb[b].lock(), "inode {i} points at free block {b}");
                seen.with_mut(|s| {
                    assert!(!s[b], "block {b} allocated twice");
                    s[b] = true;
                });
            }
        }
    })
}

/// The file-system model as an explicit-state VM model (for the exact
/// coverage counts of Figures 1 and 4).
pub fn filesystem_model(params: FsParams) -> Model {
    let mut m = ModelBuilder::new();
    let inode = m.array("inode", vec![0; params.inodes]);
    let busy = m.array("busy", vec![0; params.blocks]);
    let locki = m.lock_array("locki", params.inodes);
    let lockb = m.lock_array("lockb", params.blocks);

    for tid in 0..params.threads {
        m.thread(&format!("creator{tid}"), |t| {
            let i = (tid % params.inodes) as i64;
            let v = t.local();
            let b = t.local();
            let busy_v = t.local();
            let done = t.new_label();
            t.acquire_idx(locki, i);
            t.load_arr(inode, i, v);
            t.jump_if(v.ne(0), done);
            t.compute(b, (i * 2) % (params.blocks as i64));
            let scan = t.new_label();
            let found = t.new_label();
            t.place(scan);
            t.acquire_idx(lockb, b);
            t.load_arr(busy, b, busy_v);
            t.jump_if(busy_v.eq(0), found);
            t.release_idx(lockb, b);
            t.compute(b, (b + 1) % (params.blocks as i64));
            t.jump(scan);
            t.place(found);
            t.store_arr(busy, b, 1);
            t.store_arr(inode, i, b + 1);
            t.release_idx(lockb, b);
            t.place(done);
            t.release_idx(locki, i);
        });
    }
    m.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::search::{Search, SearchConfig};
    use icb_statevm::{reachable_states, ExplicitConfig, ExplicitIcb};

    #[test]
    fn model_is_bug_free_over_the_full_space() {
        let model = filesystem_model(FsParams::default());
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
        assert!(report.distinct_states > 100);
    }

    #[test]
    fn small_bounds_cover_most_states() {
        // The Figure 4 claim: a handful of preemptions covers the whole
        // space of this model.
        let model = filesystem_model(FsParams::default());
        let total = reachable_states(&model, 10_000_000);
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert_eq!(report.distinct_states, total);
        let at_bound = |b: usize| {
            report
                .bound_history
                .iter()
                .find(|s| s.bound == b)
                .map(|s| s.cumulative_states)
                .unwrap_or(total)
        };
        assert!(
            at_bound(4) as f64 >= 0.8 * total as f64,
            "bound 4 covers {} of {}",
            at_bound(4),
            total
        );
    }

    #[test]
    fn runtime_version_has_no_bugs_up_to_bound_one() {
        let program = filesystem_program(FsParams {
            threads: 2,
            inodes: 1,
            blocks: 2,
        });
        let config = SearchConfig {
            preemption_bound: Some(1),
            ..SearchConfig::default()
        };
        let report = Search::over(&program).config(config).run().unwrap();
        assert_eq!(report.completed_bound, Some(1));
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn contended_inode_skips_second_allocation() {
        // With 1 inode and 2 threads, exactly one thread allocates.
        let model = filesystem_model(FsParams {
            threads: 2,
            inodes: 1,
            blocks: 2,
        });
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty());
    }
}
