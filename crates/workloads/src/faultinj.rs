//! Fault-injection workloads: bugs that no purely preemption-bounded
//! search can reach.
//!
//! Both programs are clean under every schedule at fault bound 0 — the
//! fallible operations they use (`Mutex::try_lock`, `Condvar::wait`)
//! cannot fail without the scheduler injecting a fault, because the
//! locks are uncontended and the condition variables are only notified
//! after their predicates hold. The seeded bugs are error-handling
//! mistakes, visible exactly at fault bound ≥ 1:
//!
//! - [`retry_lock_program`]: workers publish one update each through a
//!   thread-private lock acquired with `try_lock`. The buggy variant
//!   sheds the update after a single failed attempt instead of
//!   retrying, losing it — minimal witness `(0 preemptions, 1 fault)`.
//! - [`spurious_consumer_program`]: a producer/consumer handshake whose
//!   buggy consumer guards `Condvar::wait` with `if` instead of
//!   `while`, so a spurious wakeup lets it consume before the item is
//!   ready — minimal witness `(0 preemptions, 1 fault)`.
//!
//! [`faultinj_model`] is the retry loop as a VM model built on the
//! [`fail_point`](icb_statevm::ThreadBuilder::fail_point) instruction,
//! for the explicit-state side (where fail points never fire, so the
//! model doubles as a state-count baseline for the fault-free space).

use std::sync::Arc;

use icb_runtime::sync::{AtomicI64, Condvar, Mutex};
use icb_runtime::{thread, RuntimeProgram};
use icb_statevm::{Model, ModelBuilder};

/// How a worker reacts to a failed `try_lock`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryVariant {
    /// Retry until the lock is acquired: correct under any fault bound
    /// (the bound itself guarantees the loop terminates).
    Correct,
    /// Shed the update after the first failure — the seeded lost-update
    /// bug, reachable only with an injected fault.
    ShedOnFailure,
}

/// How the consumer guards its `Condvar::wait`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsumerVariant {
    /// `while !ready { wait }`: rechecks after every wakeup, absorbing
    /// spurious ones. Correct under any fault bound.
    WhileRecheck,
    /// `if !ready { wait }`: trusts the first wakeup — the seeded
    /// missing-recheck bug, reachable only via a spurious wakeup.
    IfNoRecheck,
}

/// `workers` threads each publish one update through a thread-private
/// lock acquired with `try_lock`; the main task asserts that no update
/// was lost.
///
/// Every lock is owned by exactly one worker, so `try_lock` can fail
/// *only* by injected fault: at fault bound 0 this program is correct
/// under every schedule, buggy variant included.
pub fn retry_lock_program(variant: RetryVariant, workers: usize) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let total = Arc::new(AtomicI64::new(0));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    // Thread-private: contention-free, so failure means
                    // an injected fault (a "timed-out" acquisition).
                    let cell = Mutex::new(0i64);
                    loop {
                        match cell.try_lock() {
                            Some(mut slot) => {
                                *slot += 1;
                                break;
                            }
                            None => match variant {
                                RetryVariant::Correct => continue,
                                // BUG: gives up and drops the update.
                                RetryVariant::ShedOnFailure => break,
                            },
                        }
                    }
                    total.fetch_add(cell.into_inner());
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(
            total.load(),
            workers as i64,
            "an update was shed on try_lock failure"
        );
    })
}

/// A one-item producer/consumer handshake over a condition variable.
///
/// The producer sets `ready` under the lock before notifying, and the
/// consumer holds the lock from its check through the wait, so at fault
/// bound 0 no schedule can wake the consumer early and both variants
/// are correct. A spurious wakeup (an injected `Condvar::wait` fault)
/// breaks the `if`-guarded variant.
pub fn spurious_consumer_program(variant: ConsumerVariant) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                *lock.lock() = true;
                cv.notify_one();
            })
        };
        let consumer = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                match variant {
                    ConsumerVariant::WhileRecheck => {
                        while !*ready {
                            ready = cv.wait(ready);
                        }
                    }
                    ConsumerVariant::IfNoRecheck => {
                        // BUG: a spurious wakeup skips the recheck.
                        if !*ready {
                            ready = cv.wait(ready);
                        }
                    }
                }
                assert!(*ready, "consumed before the item was ready");
            })
        };
        producer.join();
        consumer.join();
    })
}

/// The correct retry loop as a VM model, one `fail-point` instruction
/// per attempt.
///
/// Under the stateless adapter the fail point is a searched binary
/// choice; under the explicit-state checker it never fires, so the
/// model also serves as the fault-free state-count baseline.
pub fn faultinj_model(workers: usize) -> Model {
    let mut m = ModelBuilder::new();
    let total = m.global("total", 0);
    for _ in 0..workers {
        m.thread("worker", |t| {
            let failed = t.local();
            let old = t.local();
            let retry = t.new_label();
            t.place(retry);
            t.fail_point("cell-update", failed);
            t.jump_if(failed.ne(0), retry);
            t.fetch_add(total, 1, old);
            t.assert(old.ge(0), "count never regresses");
        });
    }
    m.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::search::{Search, SearchConfig};
    use icb_core::ControlledProgram;

    fn search(
        program: &(dyn ControlledProgram + Sync),
        fault_bound: usize,
    ) -> icb_core::search::SearchReport {
        Search::over(program)
            .config(SearchConfig {
                fault_bound,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
    }

    #[test]
    fn shed_on_failure_is_invisible_without_faults() {
        let program = retry_lock_program(RetryVariant::ShedOnFailure, 2);
        let report = search(&program, 0);
        assert!(report.completed, "small program must exhaust");
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn shed_on_failure_found_at_one_fault_with_minimal_witness() {
        let program = retry_lock_program(RetryVariant::ShedOnFailure, 2);
        let report = search(&program, 1);
        let bug = report.bugs.first().expect("lost update under fault");
        assert_eq!(
            (bug.preemptions, bug.faults),
            (0, 1),
            "witness must be fault-minimal: {bug:?}"
        );
        assert_eq!(bug.schedule.fault_count(), 1);
        match &bug.outcome {
            icb_core::ExecutionOutcome::AssertionFailure { message, .. } => {
                assert!(message.contains("shed"), "got: {message}");
            }
            other => panic!("expected assertion failure, got {other}"),
        }
    }

    #[test]
    fn shed_witness_replays_byte_identically() {
        let program = retry_lock_program(RetryVariant::ShedOnFailure, 2);
        let report = search(&program, 1);
        let bug = report.bugs.first().expect("bug");
        let mut replay = icb_core::ReplayScheduler::new(bug.schedule.clone());
        let result = program.execute(&mut replay, &mut icb_core::NullSink);
        assert!(result.outcome.is_bug(), "witness must replay as a bug");
        assert_eq!(result.trace.schedule(), bug.schedule);
        assert_eq!(result.stats.faults, 1);
    }

    #[test]
    fn retry_variant_survives_faults() {
        let program = retry_lock_program(RetryVariant::Correct, 2);
        let report = search(&program, 2);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn missing_recheck_is_invisible_without_faults() {
        let program = spurious_consumer_program(ConsumerVariant::IfNoRecheck);
        let report = search(&program, 0);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn missing_recheck_fails_on_spurious_wakeup() {
        let program = spurious_consumer_program(ConsumerVariant::IfNoRecheck);
        let report = search(&program, 1);
        let bug = report.bugs.first().expect("spurious wakeup bug");
        assert_eq!((bug.preemptions, bug.faults), (0, 1), "{bug:?}");
        match &bug.outcome {
            icb_core::ExecutionOutcome::AssertionFailure { message, .. } => {
                assert!(message.contains("ready"), "got: {message}");
            }
            other => panic!("expected assertion failure, got {other}"),
        }
    }

    #[test]
    fn while_recheck_survives_spurious_wakeups() {
        let program = spurious_consumer_program(ConsumerVariant::WhileRecheck);
        let report = search(&program, 2);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn vm_retry_model_is_clean_and_fault_searchable() {
        // Stateless adapter: faults explored, retry loop stays correct.
        let model = faultinj_model(2);
        let report = search(&model, 2);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
        // Explicit-state side: fail points never fire, model terminates.
        use icb_statevm::{ExplicitConfig, ExplicitIcb};
        let explicit = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(explicit.completed);
        assert!(explicit.bugs.is_empty());
    }
}
