//! The work-stealing queue benchmark.
//!
//! An implementation of the Cilk-style work-stealing deque (after
//! Frigo–Leiserson–Randall's THE protocol, via Leijen's C# futures
//! library, the implementation the paper tested): a bounded circular
//! buffer accessed concurrently by a *victim* (push/pop at the tail) and
//! a *thief* (steal at the head), synchronized without blocking through
//! atomic loads, stores and compare-and-swap.
//!
//! The implementor of the paper's version seeded three subtle bugs, each
//! found within a context bound of 2 (Table 2: one at bound 1, two at
//! bound 2). This module seeds three bugs of the same species:
//!
//! * [`WsqVariant::TailPublishFirst`] — `push` publishes the new tail
//!   before writing the item into the buffer, letting the thief steal an
//!   uninitialized slot.
//! * [`WsqVariant::MissingTailRestore`] — `pop` forgets to restore the
//!   tail after losing the last-element race to the thief, corrupting
//!   the queue's accounting.
//! * [`WsqVariant::NonAtomicSteal`] — `steal` advances the head with a
//!   plain store instead of compare-and-swap, so the same item can be
//!   consumed twice.
//!
//! The invariants checked in every interleaving: no item is consumed
//! twice, no uninitialized slot is consumed, and consumed + remaining
//! equals pushed.

use std::sync::Arc;

use icb_runtime::sync::AtomicI64;
use icb_runtime::{thread, DataVar, RuntimeProgram};
use icb_statevm::{Model, ModelBuilder, ThreadBuilder};

/// Which version of the queue to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WsqVariant {
    /// The correct THE-style protocol.
    Correct,
    /// Bug: `push` bumps the tail before writing the buffer slot.
    TailPublishFirst,
    /// Bug: `pop` does not restore the tail after losing the race for
    /// the last element.
    MissingTailRestore,
    /// Bug: `steal` uses load-then-store instead of compare-and-swap.
    NonAtomicSteal,
}

const CAPACITY: usize = 4;
const MASK: i64 = (CAPACITY as i64) - 1;

/// The bounded work-stealing deque.
struct WorkStealQueue {
    head: AtomicI64,
    tail: AtomicI64,
    buf: Vec<DataVar<i64>>,
    variant: WsqVariant,
}

impl WorkStealQueue {
    fn new(variant: WsqVariant) -> Self {
        WorkStealQueue {
            head: AtomicI64::new(0),
            tail: AtomicI64::new(0),
            buf: (0..CAPACITY).map(|_| DataVar::new(0)).collect(),
            variant,
        }
    }

    /// Victim-only: push at the tail. The driver never overfills the
    /// bounded buffer.
    fn push(&self, item: i64) {
        let t = self.tail.load();
        if self.variant == WsqVariant::TailPublishFirst {
            // BUG: the new tail is visible before the item is written.
            self.tail.store(t + 1);
            self.buf[(t & MASK) as usize].write(item);
        } else {
            self.buf[(t & MASK) as usize].write(item);
            self.tail.store(t + 1);
        }
    }

    /// Victim-only: pop at the tail (the THE protocol).
    fn pop(&self) -> Option<i64> {
        let t = self.tail.load() - 1;
        self.tail.store(t);
        let h = self.head.load();
        if t < h {
            // Queue empty: undo the speculative decrement.
            self.tail.store(h);
            return None;
        }
        let item = self.buf[(t & MASK) as usize].read();
        if t > h {
            return Some(item);
        }
        // Last element: race the thief for it.
        let won = self.head.compare_exchange(h, h + 1).is_ok();
        if self.variant != WsqVariant::MissingTailRestore {
            self.tail.store(h + 1);
        }
        // BUG (MissingTailRestore): tail is left at h while head moved
        // to h + 1, corrupting the size accounting.
        if won {
            Some(item)
        } else {
            None
        }
    }

    /// Thief-only: steal at the head.
    fn steal(&self) -> Option<i64> {
        let h = self.head.load();
        let t = self.tail.load();
        if h >= t {
            return None;
        }
        let item = self.buf[(h & MASK) as usize].read();
        match self.variant {
            WsqVariant::NonAtomicSteal => {
                // BUG: check-then-act; the victim may have taken the
                // same item in between.
                self.head.store(h + 1);
                Some(item)
            }
            _ => {
                if self.head.compare_exchange(h, h + 1).is_ok() {
                    Some(item)
                } else {
                    None
                }
            }
        }
    }

    /// Entries currently accounted for (valid once both roles are done).
    fn len(&self) -> i64 {
        self.tail.load() - self.head.load()
    }
}

/// The paper's test driver: a victim pushing and popping `items` work
/// items and a thief attempting `steals` steals (2 threads; the harness
/// main thread only spawns, joins and checks).
pub fn wsq_program(variant: WsqVariant, items: usize, steals: usize) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let q = Arc::new(WorkStealQueue::new(variant));
        let victim_got = Arc::new(DataVar::new(Vec::new()));
        let thief_got = Arc::new(DataVar::new(Vec::new()));

        let victim = {
            let q = Arc::clone(&q);
            let got = Arc::clone(&victim_got);
            thread::spawn(move || {
                // Push everything, popping once midway — the mix the
                // paper's harness uses to exercise both tail paths.
                for i in 0..items {
                    q.push((i + 1) as i64);
                    if i == items / 2 {
                        if let Some(v) = q.pop() {
                            got.with_mut(|g| g.push(v));
                        }
                    }
                }
                if let Some(v) = q.pop() {
                    got.with_mut(|g| g.push(v));
                }
            })
        };
        let thief = {
            let q = Arc::clone(&q);
            let got = Arc::clone(&thief_got);
            thread::spawn(move || {
                for _ in 0..steals {
                    if let Some(v) = q.steal() {
                        got.with_mut(|g| g.push(v));
                    }
                }
            })
        };
        victim.join();
        thief.join();

        // Drain the queue (single-threaded now) and check conservation.
        let mut consumed: Vec<i64> = Vec::new();
        victim_got.with(|g| consumed.extend_from_slice(g));
        thief_got.with(|g| consumed.extend_from_slice(g));
        assert!(q.len() >= 0, "negative queue size: accounting corrupted");
        while let Some(v) = q.pop() {
            consumed.push(v);
        }
        let mut seen = vec![false; items + 1];
        for v in &consumed {
            assert!(
                *v >= 1 && *v <= items as i64,
                "consumed uninitialized or corrupt item {v}"
            );
            let ix = *v as usize;
            assert!(!seen[ix], "item {v} consumed twice");
            seen[ix] = true;
        }
        assert_eq!(
            consumed.len(),
            items,
            "items lost: consumed {consumed:?} of {items}"
        );
    })
}

/// Emits `push(value)` into a VM thread (victim side).
fn vm_push(
    t: &mut ThreadBuilder,
    q: &VmQueue,
    value: i64,
    tl: icb_statevm::Local,
    variant: WsqVariant,
) {
    t.load(q.tail, tl);
    if variant == WsqVariant::TailPublishFirst {
        t.store(q.tail, tl + 1);
        t.store_arr(q.buf, tl % MASK_PLUS_1, value);
    } else {
        t.store_arr(q.buf, tl % MASK_PLUS_1, value);
        t.store(q.tail, tl + 1);
    }
}

const MASK_PLUS_1: i64 = CAPACITY as i64;

/// Handles to the VM queue's shared state.
struct VmQueue {
    head: icb_statevm::Global,
    tail: icb_statevm::Global,
    buf: icb_statevm::ArrayVar,
    seen: icb_statevm::ArrayVar,
    consumed: icb_statevm::Global,
}

/// Emits "record consumption of the item in `v`" with the double-consume
/// and initialization assertions.
fn vm_consume(t: &mut ThreadBuilder, q: &VmQueue, v: icb_statevm::Local, old: icb_statevm::Local) {
    t.assert(v.ge(1), "consumed uninitialized item");
    t.load_arr(q.seen, icb_statevm::Expr::from(v), old);
    t.assert(old.eq(0), "item consumed twice");
    t.store_arr(q.seen, icb_statevm::Expr::from(v), 1);
    let tmp = old;
    t.fetch_add(q.consumed, 1, tmp);
}

/// The work-stealing queue as an explicit-state VM model — the program
/// behind Figures 1 and 2. `items` are pushed (interleaved with one pop)
/// by the victim; the thief attempts `steals` steals; a checker thread
/// validates conservation at the end.
pub fn wsq_model(variant: WsqVariant, items: usize, steals: usize) -> Model {
    let mut m = ModelBuilder::new();
    let head = m.global("head", 0);
    let tail = m.global("tail", 0);
    let buf = m.array("buf", vec![0; CAPACITY]);
    let seen = m.array("seen", vec![0; items + 1]);
    let consumed = m.global("consumed", 0);
    let done = m.global("done", 0);
    let q = VmQueue {
        head,
        tail,
        buf,
        seen,
        consumed,
    };

    m.thread("victim", |t| {
        let tl = t.local();
        let h = t.local();
        let v = t.local();
        let ok = t.local();
        let old = t.local();
        for i in 0..items {
            vm_push(t, &q, (i + 1) as i64, tl, variant);
            if i == items / 2 {
                vm_pop(t, &q, tl, h, v, ok, old, variant);
            }
        }
        vm_pop(t, &q, tl, h, v, ok, old, variant);
        t.fetch_add(done, 1, old);
    });

    m.thread("thief", |t| {
        let h = t.local();
        let tl = t.local();
        let v = t.local();
        let ok = t.local();
        let old = t.local();
        for _ in 0..steals {
            let give_up = t.new_label();
            t.load(q.head, h);
            t.load(q.tail, tl);
            t.jump_if(h.ge(tl), give_up);
            t.load_arr(q.buf, h % MASK_PLUS_1, v);
            match variant {
                WsqVariant::NonAtomicSteal => {
                    t.store(q.head, h + 1);
                    vm_consume(t, &q, v, old);
                }
                _ => {
                    t.cas(q.head, h, h + 1, ok);
                    let lost = t.new_label();
                    t.jump_if(ok.eq(0), lost);
                    vm_consume(t, &q, v, old);
                    t.place(lost);
                }
            }
            t.place(give_up);
        }
        t.fetch_add(done, 1, old);
    });

    m.thread("checker", |t| {
        let h = t.local();
        let tl = t.local();
        let c = t.local();
        t.wait_eq(done, 2);
        t.load(q.head, h);
        t.load(q.tail, tl);
        t.load(q.consumed, c);
        t.assert(tl.ge(icb_statevm::Expr::from(h)), "negative queue size");
        // consumed + remaining == pushed
        t.assert((c + (tl - h)).eq(items as i64), "items lost or duplicated");
    });
    m.build()
}

/// Emits `pop()` into a VM victim thread.
#[allow(clippy::too_many_arguments)]
fn vm_pop(
    t: &mut ThreadBuilder,
    q: &VmQueue,
    tl: icb_statevm::Local,
    h: icb_statevm::Local,
    v: icb_statevm::Local,
    ok: icb_statevm::Local,
    old: icb_statevm::Local,
    variant: WsqVariant,
) {
    let out = t.new_label();
    let empty = t.new_label();
    t.load(q.tail, tl);
    t.compute(tl, tl - 1);
    t.store(q.tail, icb_statevm::Expr::from(tl));
    t.load(q.head, h);
    t.jump_if(tl.lt(icb_statevm::Expr::from(h)), empty);
    t.load_arr(q.buf, tl % MASK_PLUS_1, v);
    let last = t.new_label();
    t.jump_unless(tl.gt(icb_statevm::Expr::from(h)), last);
    vm_consume(t, q, v, old);
    t.jump(out);
    t.place(last);
    // Last element: race the thief via CAS on head.
    t.cas(q.head, icb_statevm::Expr::from(h), h + 1, ok);
    if variant != WsqVariant::MissingTailRestore {
        t.store(q.tail, h + 1);
    }
    let lost = t.new_label();
    t.jump_if(ok.eq(0), lost);
    vm_consume(t, q, v, old);
    t.place(lost);
    t.jump(out);
    t.place(empty);
    t.store(q.tail, icb_statevm::Expr::from(h));
    t.place(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::search::{Search, SearchConfig};

    fn minimal_bug_report(
        program: &(dyn icb_core::ControlledProgram + Sync),
        budget: usize,
    ) -> Option<icb_core::search::BugReport> {
        Search::over(program)
            .config(SearchConfig {
                max_executions: Some(budget),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .bugs
            .into_iter()
            .next()
    }
    use icb_core::ExecutionOutcome;
    use icb_statevm::{ExplicitConfig, ExplicitIcb};

    fn minimal_bound_vm(variant: WsqVariant) -> Option<usize> {
        let model = wsq_model(variant, 3, 2);
        let report = ExplicitIcb::new(ExplicitConfig {
            stop_on_first_bug: true,
            ..ExplicitConfig::default()
        })
        .run(&model);
        report.bugs.first().map(|b| b.bound)
    }

    #[test]
    fn correct_vm_queue_is_bug_free_everywhere() {
        let model = wsq_model(WsqVariant::Correct, 3, 2);
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn seeded_vm_bugs_need_at_most_two_preemptions() {
        for variant in [
            WsqVariant::TailPublishFirst,
            WsqVariant::MissingTailRestore,
            WsqVariant::NonAtomicSteal,
        ] {
            let bound =
                minimal_bound_vm(variant).unwrap_or_else(|| panic!("{variant:?} not found"));
            assert!(
                (1..=2).contains(&bound),
                "{variant:?} found at bound {bound}"
            );
        }
    }

    #[test]
    fn runtime_tail_publish_bug_found_quickly() {
        let program = wsq_program(WsqVariant::TailPublishFirst, 3, 2);
        let bug = minimal_bug_report(&program, 300_000).expect("bug");
        assert!(bug.preemptions <= 2, "found at {}", bug.preemptions);
        assert!(matches!(
            bug.outcome,
            ExecutionOutcome::AssertionFailure { .. } | ExecutionOutcome::DataRace { .. }
        ));
    }

    #[test]
    fn runtime_correct_queue_clean_up_to_bound_one() {
        let program = wsq_program(WsqVariant::Correct, 3, 2);
        let config = SearchConfig {
            preemption_bound: Some(1),
            ..SearchConfig::default()
        };
        let report = Search::over(&program).config(config).run().unwrap();
        assert_eq!(report.completed_bound, Some(1));
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn sequential_queue_semantics() {
        // No thief at all: the queue must behave like a plain stack on
        // the tail end (pop returns the most recent push).
        let model = wsq_model(WsqVariant::Correct, 3, 0);
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }
}
