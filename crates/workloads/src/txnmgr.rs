//! The transaction manager benchmark.
//!
//! Models the transaction component of a web-services authoring system
//! (the paper's benchmark was a ~7000-line ZING model built from the C#
//! sources): in-flight transactions live in a hashtable synchronized
//! with fine-grained (per-bucket) locking. One thread performs
//! transaction operations (create, commit); a timer thread periodically
//! flushes timed-out transactions from the table. Following the paper,
//! this benchmark exists only as an explicit-state VM model.
//!
//! State per bucket: an occupancy counter `count[b]` and per-transaction
//! states `state[tx]` (0 = absent, 1 = in-flight, 2 = committed,
//! 3 = aborted by the timer). Program invariants, asserted inline:
//!
//! * occupancy never underflows (every decrement checks `count > 0`);
//! * on insert, the bucket counter equals the number of in-flight
//!   transactions hashed to the bucket.
//!
//! Three seeded bugs (Table 2 reports the originals at bounds 2, 2, 3;
//! the measured bounds for these analogs are asserted in the tests and
//! recorded in `EXPERIMENTS.md`):
//!
//! * [`TxnVariant::CommitToctou`] — commit checks the transaction state
//!   *before* taking the bucket lock and does not recheck, so a timer
//!   flush in between double-decrements the bucket.
//! * [`TxnVariant::UnlockedScan`] — the timer scans transaction states
//!   without the bucket lock and aborts based on the stale answer.
//! * [`TxnVariant::TornFlush`] — the timer decrements the bucket
//!   counter, drops the lock, and only then (re-acquiring it) marks the
//!   transaction aborted; an insert in the window observes
//!   `count != #in-flight`.

use icb_statevm::{Expr, Model, ModelBuilder};

/// Which version of the transaction manager to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnVariant {
    /// Correct fine-grained locking.
    Correct,
    /// Commit checks state outside the lock without rechecking.
    CommitToctou,
    /// Timer scans states without holding the bucket lock.
    UnlockedScan,
    /// Timer tears its flush across two critical sections.
    TornFlush,
}

/// Number of transactions the mutator runs through the table.
const NT: i64 = 2;

/// Builds the transaction-manager model: one mutator thread
/// (create + commit for each transaction, all hashing to one bucket, as
/// in a collision-heavy test) and one timer thread (flush pass over the
/// bucket), 2 threads as in the paper's tests.
pub fn txnmgr_model(variant: TxnVariant) -> Model {
    let mut m = ModelBuilder::new();
    let state = m.array("state", vec![0; NT as usize]);
    let count = m.global("count", 0);
    let lock = m.lock("bucket");

    m.thread("mutator", |t| {
        let c = t.local();
        let s0 = t.local();
        let s1 = t.local();
        let inflight = t.local();

        for tx in 0..NT {
            // ---- insert(tx) ----
            t.acquire(lock);
            // Invariant check: count == #in-flight in this bucket.
            t.load_arr(state, 0, s0);
            t.load_arr(state, 1, s1);
            t.compute(inflight, s0.eq(1) + s1.eq(1));
            t.load(count, c);
            t.assert(
                c.eq(Expr::from(inflight)),
                "bucket count diverged from in-flight set",
            );
            t.store_arr(state, tx, 1);
            t.store(count, c + 1);
            t.release(lock);

            // ---- commit(tx) ----
            match variant {
                TxnVariant::CommitToctou => {
                    // BUG: state checked before locking, no recheck.
                    t.load_arr(state, tx, s0);
                    let skip = t.new_label();
                    t.jump_if(s0.ne(1), skip);
                    t.acquire(lock);
                    t.store_arr(state, tx, 2);
                    t.load(count, c);
                    t.assert(c.ge(1), "bucket count underflow");
                    t.store(count, c - 1);
                    t.release(lock);
                    t.place(skip);
                }
                _ => {
                    t.acquire(lock);
                    t.load_arr(state, tx, s0);
                    let skip = t.new_label();
                    t.jump_if(s0.ne(1), skip);
                    t.store_arr(state, tx, 2);
                    t.load(count, c);
                    t.assert(c.ge(1), "bucket count underflow");
                    t.store(count, c - 1);
                    t.place(skip);
                    t.release(lock);
                }
            }
        }
    });

    m.thread("timer", |t| {
        let c = t.local();
        let s = t.local();
        for tx in 0..NT {
            match variant {
                TxnVariant::UnlockedScan => {
                    // BUG: the staleness check happens outside the lock.
                    t.load_arr(state, tx, s);
                    let skip = t.new_label();
                    t.jump_if(s.ne(1), skip);
                    t.acquire(lock);
                    t.store_arr(state, tx, 3);
                    t.load(count, c);
                    t.assert(c.ge(1), "bucket count underflow");
                    t.store(count, c - 1);
                    t.release(lock);
                    t.place(skip);
                }
                TxnVariant::TornFlush => {
                    // BUG: decrement and state transition live in two
                    // separate critical sections.
                    let skip = t.new_label();
                    let out = t.new_label();
                    t.acquire(lock);
                    t.load_arr(state, tx, s);
                    t.jump_if(s.ne(1), skip);
                    t.load(count, c);
                    t.assert(c.ge(1), "bucket count underflow");
                    t.store(count, c - 1);
                    t.release(lock);
                    // <- an insert here sees count != #in-flight
                    t.acquire(lock);
                    t.store_arr(state, tx, 3);
                    t.release(lock);
                    t.jump(out);
                    t.place(skip);
                    t.release(lock);
                    t.place(out);
                }
                _ => {
                    t.acquire(lock);
                    t.load_arr(state, tx, s);
                    let skip = t.new_label();
                    t.jump_if(s.ne(1), skip);
                    t.store_arr(state, tx, 3);
                    t.load(count, c);
                    t.assert(c.ge(1), "bucket count underflow");
                    t.store(count, c - 1);
                    t.place(skip);
                    t.release(lock);
                }
            }
        }
    });

    m.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_statevm::{ExplicitConfig, ExplicitIcb};

    fn minimal_bound(variant: TxnVariant) -> Option<usize> {
        let report = ExplicitIcb::new(ExplicitConfig {
            stop_on_first_bug: true,
            ..ExplicitConfig::default()
        })
        .run(&txnmgr_model(variant));
        report.bugs.first().map(|b| b.bound)
    }

    #[test]
    fn correct_manager_is_clean_over_the_full_space() {
        let report =
            ExplicitIcb::new(ExplicitConfig::default()).run(&txnmgr_model(TxnVariant::Correct));
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    }

    #[test]
    fn commit_toctou_needs_one_wedge() {
        let bound = minimal_bound(TxnVariant::CommitToctou).expect("bug");
        assert!((1..=2).contains(&bound), "found at {bound}");
    }

    #[test]
    fn unlocked_scan_needs_one_wedge() {
        let bound = minimal_bound(TxnVariant::UnlockedScan).expect("bug");
        assert!((1..=2).contains(&bound), "found at {bound}");
    }

    #[test]
    fn torn_flush_needs_two_wedges() {
        // Both windows must interleave: the timer inside the mutator's
        // insert sequence AND the insert inside the timer's torn flush.
        let bound = minimal_bound(TxnVariant::TornFlush).expect("bug");
        assert_eq!(bound, 2);
    }

    #[test]
    fn no_variant_fails_at_bound_zero() {
        for v in [
            TxnVariant::CommitToctou,
            TxnVariant::UnlockedScan,
            TxnVariant::TornFlush,
        ] {
            let report = ExplicitIcb::new(ExplicitConfig {
                preemption_bound: Some(0),
                ..ExplicitConfig::default()
            })
            .run(&txnmgr_model(v));
            assert!(report.bugs.is_empty(), "{v:?} failed at bound 0");
        }
    }
}
