//! The Dryad channels benchmark.
//!
//! Dryad is a distributed execution engine whose vertices communicate
//! through files, TCP pipes and shared-memory FIFOs. The paper's test
//! (provided by Dryad's lead developer, 5 threads) exercises the
//! shared-memory channel library, and ICB found 5 previously unknown
//! bugs in it — 1 at bound 0 and 4 at bound 1 — including the
//! use-after-free of Figure 3:
//!
//! ```text
//! void RChannelReaderImpl::AlertApplication(RChannelItem* item) {
//!     // XXX: Preempt here for the bug
//!     EnterCriticalSection(&m_baseCS);
//!     ...
//! }
//! // main thread:
//! channel->Close();   // wrong assumption: Close waits for the workers
//! delete channel;     // workers still hold a reference!
//! ```
//!
//! This reimplementation models the channel as a FIFO of items consumed
//! by worker threads; `Close` enqueues one STOP per worker and
//! synchronizes with them through acknowledgement and completion
//! semaphores. Deleting the channel clears an `alive` flag; entering the
//! base critical section afterwards asserts `alive` — firing on exactly
//! the interleavings where the original dereferenced freed memory
//! (memory-safe Rust cannot express the actual UAF; see DESIGN.md).
//!
//! Seeded bugs:
//!
//! * [`DryadVariant::StopJumpsQueue`] (bound 0) — STOP messages jump to
//!   the front of the FIFO, so workers exit with data items undelivered.
//! * [`DryadVariant::CloseNoWait`] (bound 1) — Figure 3: `Close`
//!   returns once the STOPs are acknowledged, without waiting for
//!   `AlertApplication`; the delete races the workers' cleanup.
//! * [`DryadVariant::AckBeforeAlert`] (bound 1) — the worker signals
//!   completion *before* running `AlertApplication`.
//! * [`DryadVariant::UnsyncStats`] (bound 1) — the channel's byte
//!   statistics are updated outside the base critical section: a data
//!   race between workers.
//! * [`DryadVariant::UnlockedUntrack`] (bound 1) — the in-flight item
//!   list is cleaned up outside its lock: a data race.

use std::collections::VecDeque;
use std::sync::Arc;

use icb_runtime::sync::{AtomicBool, AtomicI64, Mutex, Semaphore};
use icb_runtime::{thread, DataVar, RuntimeProgram};

/// Which version of the channel library to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DryadVariant {
    /// Correct channel shutdown protocol.
    Correct,
    /// STOP messages overtake queued data items.
    StopJumpsQueue,
    /// `Close` does not wait for the workers' cleanup (Figure 3).
    CloseNoWait,
    /// Workers acknowledge completion before their cleanup.
    AckBeforeAlert,
    /// Byte statistics updated outside the base critical section.
    UnsyncStats,
    /// In-flight tracking list cleaned up outside its lock.
    UnlockedUntrack,
}

const STOP: i64 = -1;

/// The shared-memory channel (`RChannelReaderImpl` analog).
struct Channel {
    queue_lock: Mutex<()>,
    items: DataVar<VecDeque<i64>>,
    available: Semaphore,
    /// `m_baseCS` of Figure 3.
    base_cs: Mutex<()>,
    /// Models the allocation status of the channel object.
    alive: AtomicBool,
    /// In-flight (debug-tracked) items.
    pending: DataVar<Vec<i64>>,
    pending_lock: Mutex<()>,
    processed: AtomicI64,
    /// Total payload "bytes" delivered (guarded by `base_cs`).
    bytes: DataVar<i64>,
    /// Workers acknowledge their STOP here.
    acked: Semaphore,
    /// Workers signal full completion here.
    done: Semaphore,
    variant: DryadVariant,
}

impl Channel {
    fn new(variant: DryadVariant) -> Self {
        Channel {
            queue_lock: Mutex::new(()),
            items: DataVar::new(VecDeque::new()),
            available: Semaphore::new(0),
            base_cs: Mutex::new(()),
            alive: AtomicBool::new(true),
            pending: DataVar::new(Vec::new()),
            pending_lock: Mutex::new(()),
            processed: AtomicI64::new(0),
            bytes: DataVar::new(0),
            acked: Semaphore::new(0),
            done: Semaphore::new(0),
            variant,
        }
    }

    fn send(&self, item: i64) {
        {
            let _g = self.queue_lock.lock();
            if item == STOP && self.variant == DryadVariant::StopJumpsQueue {
                // BUG: control messages overtake unprocessed data.
                self.items.with_mut(|q| q.push_front(item));
            } else {
                self.items.with_mut(|q| q.push_back(item));
            }
        }
        self.available.release();
    }

    fn receive(&self) -> i64 {
        self.available.acquire();
        let _g = self.queue_lock.lock();
        self.items
            .with_mut(|q| q.pop_front().expect("semaphore guarantees an item"))
    }

    /// Figure 3's `AlertApplication`: the worker's cleanup notification.
    /// Entering `base_cs` dereferences the channel object — modeled by
    /// the `alive` assertion.
    fn alert_application(&self) {
        // XXX: Preempt here for the bug (Figure 3).
        let _g = self.base_cs.lock();
        assert!(
            self.alive.load(),
            "channel used after free in AlertApplication"
        );
    }

    fn track(&self, item: i64) {
        let _g = self.pending_lock.lock();
        self.pending.with_mut(|p| p.push(item));
    }

    fn untrack(&self, item: i64) {
        if self.variant == DryadVariant::UnlockedUntrack {
            // BUG: cleanup without the tracking lock.
            self.pending.with_mut(|p| p.retain(|&x| x != item));
        } else {
            let _g = self.pending_lock.lock();
            self.pending.with_mut(|p| p.retain(|&x| x != item));
        }
    }

    /// Worker loop: process data items until a STOP arrives.
    fn worker_loop(&self) {
        loop {
            let item = self.receive();
            if item == STOP {
                self.acked.release();
                if self.variant == DryadVariant::AckBeforeAlert {
                    // BUG: completion signaled before the cleanup runs.
                    self.done.release();
                    self.alert_application();
                } else {
                    self.alert_application();
                    self.done.release();
                }
                return;
            }
            self.track(item);
            if self.variant == DryadVariant::UnsyncStats {
                // BUG: the statistics update escaped the critical
                // section during a refactoring.
                let _g = self.base_cs.lock();
                self.processed.fetch_add(1);
                drop(_g);
                self.bytes.with_mut(|b| *b += item);
            } else {
                let _g = self.base_cs.lock();
                self.processed.fetch_add(1);
                self.bytes.with_mut(|b| *b += item);
            }
            self.untrack(item);
        }
    }

    /// `Close`: stop all workers and wait for them.
    fn close(&self, workers: usize) {
        for _ in 0..workers {
            self.send(STOP);
        }
        for _ in 0..workers {
            self.acked.acquire();
        }
        if self.variant != DryadVariant::CloseNoWait {
            for _ in 0..workers {
                self.done.acquire();
            }
        }
        // BUG (CloseNoWait): returning here assumes the workers are
        // finished — Figure 3's wrong assumption.
    }

    /// `delete channel`.
    fn delete(&self) {
        self.alive.store(false);
    }
}

/// The Dryad channel test: `workers` worker threads consume `items`
/// data items; the main thread closes and deletes the channel
/// (Table 1's configuration is `workers = 4`: 5 threads).
pub fn dryad_program(variant: DryadVariant, workers: usize, items: usize) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let ch = Arc::new(Channel::new(variant));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let ch = Arc::clone(&ch);
                thread::spawn(move || ch.worker_loop())
            })
            .collect();
        for i in 0..items {
            ch.send((i + 1) as i64);
        }
        ch.close(workers);
        ch.delete();
        for h in handles {
            h.join();
        }
        assert_eq!(ch.processed.load(), items as i64, "channel lost data items");
        let expected_bytes: i64 = (1..=items as i64).sum();
        ch.bytes
            .with(|b| assert_eq!(*b, expected_bytes, "byte statistics diverged"));
        ch.pending
            .with(|p| assert!(p.is_empty(), "in-flight items leaked: {p:?}"));
    })
}

/// The correct Dryad channel as an explicit-state VM model (driver +
/// `workers` worker threads, mirroring [`dryad_program`]): the item
/// FIFO, the `m_baseCS` critical section, the acknowledge/complete
/// handshake of `Close`, the `alive` flag, and the final accounting
/// assertions. The default `workers = 2` keeps exhaustive reachability
/// laptop-sized; the seeded bugs live in the runtime version.
pub fn dryad_model(workers: usize, items: usize) -> icb_statevm::Model {
    use icb_statevm::ModelBuilder;
    const STOP_V: i64 = -1;
    let cap = items + workers;

    let mut m = ModelBuilder::new();
    let queue = m.array("queue", vec![0; cap]);
    let q_head = m.global("q_head", 0);
    let q_tail = m.global("q_tail", 0);
    let q_count = m.global("q_count", 0);
    let q_lock = m.lock("q_lock");
    let base_cs = m.lock("base_cs");
    let pending_lock = m.lock("pending_lock");
    let alive = m.global("alive", 1);
    let pending = m.global("pending", 0);
    let processed = m.global("processed", 0);
    let bytes = m.global("bytes", 0);
    let acked = m.global("acked", 0);
    let done = m.global("done", 0);

    m.thread("driver", |t| {
        let tmp = t.local();
        let v = t.local();
        for i in 0..(items + workers) {
            let value = if i < items { (i + 1) as i64 } else { STOP_V };
            t.acquire(q_lock);
            t.load(q_tail, tmp);
            t.store_arr(queue, icb_statevm::Expr::from(tmp), value);
            t.store(q_tail, tmp + 1);
            t.load(q_count, tmp);
            t.store(q_count, tmp + 1);
            t.release(q_lock);
        }
        // Close: wait for the STOP acks, then for full completion.
        t.wait_eq(acked, workers as i64);
        t.wait_eq(done, workers as i64);
        // delete channel
        t.store(alive, 0);
        // Validation.
        t.load(processed, v);
        t.assert(v.eq(items as i64), "channel lost data items");
        t.load(pending, v);
        t.assert(v.eq(0), "in-flight items leaked");
        t.load(bytes, v);
        let expected: i64 = (1..=items as i64).sum();
        t.assert(v.eq(expected), "byte statistics diverged");
    });

    for _ in 0..workers {
        m.thread("worker", |t| {
            let c = t.local();
            let item = t.local();
            let old = t.local();
            let top = t.new_label();
            let got = t.new_label();
            let stop = t.new_label();
            t.place(top);
            t.wait_nonzero(q_count);
            t.acquire(q_lock);
            t.load(q_count, c);
            t.jump_if(c.gt(0), got);
            t.release(q_lock);
            t.jump(top);
            t.place(got);
            t.load(q_head, c);
            t.load_arr(queue, icb_statevm::Expr::from(c), item);
            t.store(q_head, c + 1);
            t.load(q_count, c);
            t.store(q_count, c - 1);
            t.release(q_lock);
            t.jump_if(item.eq(STOP_V), stop);
            // Data path: track, process inside the critical section,
            // untrack.
            t.acquire(pending_lock);
            t.load(pending, c);
            t.store(pending, c + 1);
            t.release(pending_lock);
            t.acquire(base_cs);
            t.fetch_add(processed, 1, old);
            t.load(bytes, c);
            t.store(bytes, c + item);
            t.release(base_cs);
            t.acquire(pending_lock);
            t.load(pending, c);
            t.store(pending, c - 1);
            t.release(pending_lock);
            t.jump(top);
            // Stop path: acknowledge, AlertApplication, complete.
            t.place(stop);
            t.fetch_add(acked, 1, old);
            t.acquire(base_cs);
            t.load(alive, c);
            t.assert(c.eq(1), "channel used after free in AlertApplication");
            t.release(base_cs);
            t.fetch_add(done, 1, old);
        });
    }
    m.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::search::{Search, SearchConfig};
    use icb_core::ExecutionOutcome;

    fn minimal_bug_report(
        program: &(dyn icb_core::ControlledProgram + Sync),
        budget: usize,
    ) -> Option<icb_core::search::BugReport> {
        Search::over(program)
            .config(SearchConfig {
                max_executions: Some(budget),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .bugs
            .into_iter()
            .next()
    }

    /// Small configuration for exhaustive-by-bound searches: 2 workers.
    fn minimal_bound(variant: DryadVariant) -> Option<(usize, ExecutionOutcome)> {
        let program = dryad_program(variant, 2, 2);
        minimal_bug_report(&program, 500_000).map(|b| (b.preemptions, b.outcome))
    }

    #[test]
    fn stop_jumps_queue_fails_without_preemptions() {
        let (bound, outcome) = minimal_bound(DryadVariant::StopJumpsQueue).expect("bug");
        assert_eq!(bound, 0);
        assert!(matches!(outcome, ExecutionOutcome::AssertionFailure { .. }));
    }

    #[test]
    fn figure_3_use_after_free_needs_one_preemption() {
        let (bound, outcome) = minimal_bound(DryadVariant::CloseNoWait).expect("bug");
        assert_eq!(bound, 1);
        match outcome {
            ExecutionOutcome::AssertionFailure { message, .. } => {
                assert!(message.contains("after free"), "got: {message}");
            }
            other => panic!("expected use-after-free assert, got {other}"),
        }
    }

    #[test]
    fn figure_3_trace_has_nonpreempting_switches_too() {
        // The paper highlights that the failing trace needs only one
        // preemption but several nonpreempting switches.
        let program = dryad_program(DryadVariant::CloseNoWait, 2, 2);
        let bug = minimal_bug_report(&program, 500_000).expect("bug");
        assert_eq!(bug.preemptions, 1);
        let mut replay = icb_core::ReplayScheduler::new(bug.schedule.clone());
        let result =
            icb_core::ControlledProgram::execute(&program, &mut replay, &mut icb_core::NullSink);
        let stats = result.stats;
        assert!(
            stats.context_switches > stats.preemptions + 2,
            "expected several free switches, got {stats:?}"
        );
    }

    #[test]
    fn ack_before_alert_needs_one_preemption() {
        let (bound, outcome) = minimal_bound(DryadVariant::AckBeforeAlert).expect("bug");
        assert_eq!(bound, 1);
        assert!(matches!(outcome, ExecutionOutcome::AssertionFailure { .. }));
    }

    #[test]
    fn unsynchronized_stats_race_with_one_preemption() {
        let (bound, outcome) = minimal_bound(DryadVariant::UnsyncStats).expect("bug");
        assert_eq!(bound, 1);
        assert!(matches!(outcome, ExecutionOutcome::DataRace { .. }));
    }

    #[test]
    fn unlocked_untrack_races_with_one_preemption() {
        let (bound, outcome) = minimal_bound(DryadVariant::UnlockedUntrack).expect("bug");
        assert_eq!(bound, 1);
        assert!(matches!(outcome, ExecutionOutcome::DataRace { .. }));
    }

    #[test]
    fn vm_model_is_clean_over_its_full_space() {
        use icb_statevm::{ExplicitConfig, ExplicitIcb};
        let model = dryad_model(2, 2);
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
        assert!(report.distinct_states > 100);
    }

    #[test]
    fn correct_channel_is_clean_up_to_bound_one() {
        let program = dryad_program(DryadVariant::Correct, 2, 1);
        let config = SearchConfig {
            preemption_bound: Some(1),
            max_executions: Some(500_000),
            ..SearchConfig::default()
        };
        let report = Search::over(&program).config(config).run().unwrap();
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
        assert_eq!(report.completed_bound, Some(1));
    }
}
