//! The APE (Asynchronous Processing Environment) benchmark.
//!
//! APE is a Windows library of data structures and helpers that give
//! logical structure and debugging support to asynchronous multithreaded
//! code. Following the paper's description of its test: the main thread
//! initializes APE's data structures, creates two worker threads, and
//! waits for them to finish; the workers concurrently exercise the
//! interface (3 threads total).
//!
//! This synthetic equivalent keeps APE's load-bearing pieces: a shared
//! work queue (mutex + semaphore), a context reference count, a debug
//! *tracking list* of in-flight work, and a completion counter the
//! teardown validates.
//!
//! Four seeded bugs, matching the paper's Table 2 profile for APE
//! (2 bugs at bound 0, 1 at bound 1, 1 at bound 2):
//!
//! * [`ApeVariant::MissingJoin`] (bound 0) — teardown validates
//!   completions without waiting for the workers.
//! * [`ApeVariant::PoisonShortcut`] (bound 0) — shutdown enqueues a
//!   single poison item for two workers: the second worker blocks
//!   forever and the join deadlocks.
//! * [`ApeVariant::UntrackedInsert`] (bound 1) — the debug tracking
//!   list is updated outside its lock: a data race.
//! * [`ApeVariant::NonAtomicRelease`] (bound 2) — the context refcount
//!   is decremented with a load/store pair instead of an atomic
//!   decrement; two overlapping releases lose an update.

use std::collections::VecDeque;
use std::sync::Arc;

use icb_runtime::sync::{AtomicI64, Mutex, Semaphore};
use icb_runtime::{thread, DataVar, RuntimeProgram};

/// Which version of APE to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApeVariant {
    /// Correct environment.
    Correct,
    /// Teardown does not join the workers before validating.
    MissingJoin,
    /// Shutdown enqueues one poison item for two workers.
    PoisonShortcut,
    /// Tracking list updated outside its lock.
    UntrackedInsert,
    /// Refcount released with a non-atomic load/store pair.
    NonAtomicRelease,
}

const POISON: i64 = -1;

/// APE's shared environment.
struct ApeEnv {
    queue: Mutex<VecDeque<i64>>,
    available: Semaphore,
    /// Debug tracking list of in-flight work items.
    tracked: DataVar<Vec<i64>>,
    track_lock: Mutex<()>,
    /// Context reference count.
    ctx_refs: AtomicI64,
    completions: AtomicI64,
    variant: ApeVariant,
}

impl ApeEnv {
    fn new(variant: ApeVariant) -> Self {
        ApeEnv {
            queue: Mutex::new(VecDeque::new()),
            available: Semaphore::new(0),
            tracked: DataVar::new(Vec::new()),
            track_lock: Mutex::new(()),
            ctx_refs: AtomicI64::new(0),
            completions: AtomicI64::new(0),
            variant,
        }
    }

    fn enqueue(&self, item: i64) {
        self.queue.lock().push_back(item);
        self.available.release();
    }

    /// Worker loop: drain items until poisoned.
    fn worker_loop(&self) {
        loop {
            self.available.acquire();
            let item = self
                .queue
                .lock()
                .pop_front()
                .expect("semaphore guarantees an item");
            if item == POISON {
                return;
            }
            self.process(item);
        }
    }

    fn track(&self, item: i64) {
        if self.variant == ApeVariant::UntrackedInsert {
            // BUG: the debug list is touched without its lock.
            self.tracked.with_mut(|t| t.push(item));
        } else {
            let _g = self.track_lock.lock();
            self.tracked.with_mut(|t| t.push(item));
        }
    }

    fn untrack(&self, item: i64) {
        if self.variant == ApeVariant::UntrackedInsert {
            // BUG: as in `track`.
            self.tracked.with_mut(|t| t.retain(|&x| x != item));
        } else {
            let _g = self.track_lock.lock();
            self.tracked.with_mut(|t| t.retain(|&x| x != item));
        }
    }

    fn add_ref(&self) {
        self.ctx_refs.fetch_add(1);
    }

    fn release_ref(&self) {
        if self.variant == ApeVariant::NonAtomicRelease {
            // BUG: load/store instead of an interlocked decrement.
            let r = self.ctx_refs.load();
            self.ctx_refs.store(r - 1);
        } else {
            self.ctx_refs.fetch_sub(1);
        }
    }

    /// One asynchronous work item, with debug tracking around it.
    fn process(&self, item: i64) {
        self.add_ref();
        self.track(item);
        self.untrack(item);
        self.release_ref();
        self.completions.fetch_add(1);
    }
}

/// The APE test driver: main initializes the environment, enqueues
/// `items` work items, spawns two workers, shuts down, and validates the
/// environment's invariants.
pub fn ape_program(variant: ApeVariant, items: usize) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let env = Arc::new(ApeEnv::new(variant));
        for i in 0..items {
            env.enqueue((i + 1) as i64);
        }
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let env = Arc::clone(&env);
                thread::spawn(move || env.worker_loop())
            })
            .collect();
        // Shutdown: one poison per worker — except in the buggy variant.
        let poisons = if variant == ApeVariant::PoisonShortcut {
            1
        } else {
            2
        };
        for _ in 0..poisons {
            env.enqueue(POISON);
        }
        if variant != ApeVariant::MissingJoin {
            for w in workers {
                w.join();
            }
        }
        // Teardown validation.
        assert_eq!(
            env.completions.load(),
            items as i64,
            "work items lost at teardown"
        );
        assert_eq!(env.ctx_refs.load(), 0, "context refcount leaked");
        env.tracked
            .with(|t| assert!(t.is_empty(), "tracking list not empty: {t:?}"));
    })
}

/// The correct APE environment as an explicit-state VM model (driver +
/// 2 workers, mirroring [`ape_program`]): a locked work queue with
/// blocking waits, a context refcount, a tracking counter, and the
/// teardown assertions. Used for exact state counting and cross-checker
/// validation; the seeded bugs live in the runtime version, where the
/// race detector can classify them.
pub fn ape_model(items: usize) -> icb_statevm::Model {
    use icb_statevm::ModelBuilder;
    const POISON_V: i64 = -1;
    let workers = 2usize;
    let cap = items + workers;

    let mut m = ModelBuilder::new();
    let queue = m.array("queue", vec![0; cap]);
    let q_head = m.global("q_head", 0);
    let q_tail = m.global("q_tail", 0);
    let q_count = m.global("q_count", 0);
    let q_lock = m.lock("q_lock");
    let track_lock = m.lock("track_lock");
    let ctx_refs = m.global("ctx_refs", 0);
    let tracked = m.global("tracked", 0);
    let completions = m.global("completions", 0);
    let workers_done = m.global("workers_done", 0);

    m.thread("driver", |t| {
        let tmp = t.local();
        let v = t.local();
        // Enqueue the work items, then one poison per worker.
        for i in 0..(items + workers) {
            let value = if i < items { (i + 1) as i64 } else { POISON_V };
            t.acquire(q_lock);
            t.load(q_tail, tmp);
            t.store_arr(queue, icb_statevm::Expr::from(tmp), value);
            t.store(q_tail, tmp + 1);
            t.load(q_count, tmp);
            t.store(q_count, tmp + 1);
            t.release(q_lock);
        }
        // Teardown: join the workers, then validate the environment.
        t.wait_eq(workers_done, workers as i64);
        t.load(completions, v);
        t.assert(v.eq(items as i64), "work items lost at teardown");
        t.load(ctx_refs, v);
        t.assert(v.eq(0), "context refcount leaked");
        t.load(tracked, v);
        t.assert(v.eq(0), "tracking list not empty");
    });

    for _ in 0..workers {
        m.thread("worker", |t| {
            let c = t.local();
            let item = t.local();
            let old = t.local();
            let top = t.new_label();
            let got = t.new_label();
            let exit = t.new_label();
            t.place(top);
            // Blocking take with recheck (another worker may win the
            // race between the wait and the lock).
            t.wait_nonzero(q_count);
            t.acquire(q_lock);
            t.load(q_count, c);
            t.jump_if(c.gt(0), got);
            t.release(q_lock);
            t.jump(top);
            t.place(got);
            t.load(q_head, c);
            t.load_arr(queue, icb_statevm::Expr::from(c), item);
            t.store(q_head, c + 1);
            t.load(q_count, c);
            t.store(q_count, c - 1);
            t.release(q_lock);
            t.jump_if(item.eq(POISON_V), exit);
            // process(item)
            t.fetch_add(ctx_refs, 1, old);
            t.acquire(track_lock);
            t.load(tracked, c);
            t.store(tracked, c + 1);
            t.release(track_lock);
            t.acquire(track_lock);
            t.load(tracked, c);
            t.store(tracked, c - 1);
            t.release(track_lock);
            t.fetch_sub(ctx_refs, 1, old);
            t.fetch_add(completions, 1, old);
            t.jump(top);
            t.place(exit);
            t.fetch_add(workers_done, 1, old);
        });
    }
    m.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::search::{Search, SearchConfig};

    fn minimal_bug_report(
        program: &(dyn icb_core::ControlledProgram + Sync),
        budget: usize,
    ) -> Option<icb_core::search::BugReport> {
        Search::over(program)
            .config(SearchConfig {
                max_executions: Some(budget),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .bugs
            .into_iter()
            .next()
    }
    use icb_core::ExecutionOutcome;

    fn minimal_bound(variant: ApeVariant) -> Option<(usize, ExecutionOutcome)> {
        let program = ape_program(variant, 2);
        minimal_bug_report(&program, 500_000).map(|b| (b.preemptions, b.outcome))
    }

    #[test]
    fn missing_join_fails_without_preemptions() {
        let (bound, outcome) = minimal_bound(ApeVariant::MissingJoin).expect("bug");
        assert_eq!(bound, 0);
        assert!(matches!(outcome, ExecutionOutcome::AssertionFailure { .. }));
    }

    #[test]
    fn poison_shortcut_deadlocks_without_preemptions() {
        let (bound, outcome) = minimal_bound(ApeVariant::PoisonShortcut).expect("bug");
        assert_eq!(bound, 0);
        assert!(matches!(outcome, ExecutionOutcome::Deadlock { .. }));
    }

    #[test]
    fn untracked_insert_races_with_one_preemption() {
        let (bound, outcome) = minimal_bound(ApeVariant::UntrackedInsert).expect("bug");
        assert_eq!(bound, 1);
        assert!(matches!(outcome, ExecutionOutcome::DataRace { .. }));
    }

    #[test]
    fn non_atomic_release_needs_two_preemptions() {
        let (bound, outcome) = minimal_bound(ApeVariant::NonAtomicRelease).expect("bug");
        assert_eq!(bound, 2);
        assert!(matches!(outcome, ExecutionOutcome::AssertionFailure { .. }));
    }

    #[test]
    fn vm_model_is_clean_and_matches_the_runtime_shape() {
        use icb_statevm::{ExplicitConfig, ExplicitIcb};
        let model = ape_model(2);
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert!(report.completed);
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
        assert!(report.distinct_states > 100);
    }

    #[test]
    fn correct_ape_is_clean_up_to_bound_two() {
        let program = ape_program(ApeVariant::Correct, 2);
        let config = SearchConfig {
            preemption_bound: Some(2),
            max_executions: Some(500_000),
            ..SearchConfig::default()
        };
        let report = Search::over(&program).config(config).run().unwrap();
        assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
        assert_eq!(report.completed_bound, Some(2));
    }
}
