//! The benchmark programs of the paper's evaluation (Section 4.1), each
//! reimplemented as a closed test driver for both checkers:
//!
//! | Benchmark | Paper origin | Threads | Bugs |
//! |---|---|---|---|
//! | [`bluetooth`] | sample Bluetooth PnP driver | 3 | 1 known (bound 1) |
//! | [`filesystem`] | file-system model (Flanagan–Godefroid Fig. 7) | 4 | race-free |
//! | [`wsq`] | Cilk-style work-stealing queue | 2 | 3 seeded (bounds 1–2) |
//! | [`txnmgr`] | transaction manager (ZING model) | 2 | 3 seeded (bounds 2–3) |
//! | [`ape`] | asynchronous processing environment | 3 | 4 seeded (bounds 0–2) |
//! | [`dryad`] | Dryad shared-memory channels | 5 | 5 seeded (bounds 0–1) |
//! | [`faultinj`] | fault-injection extension (not in the paper) | 3 | 2 seeded (fault bound 1) |
//!
//! Every benchmark exists in two forms where the experiments need both:
//! a native-Rust program against the `icb-runtime` primitives (the CHESS
//! side) and an `icb-statevm` model (the ZING side, used for exact state
//! counting in the coverage figures). The substitutions relative to the
//! paper's proprietary sources are documented in `DESIGN.md`.
//!
//! [`registry::all_benchmarks`] enumerates everything for the harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ape;
pub mod bluetooth;
pub mod dryad;
pub mod faultinj;
pub mod filesystem;
pub mod registry;
pub mod txnmgr;
pub mod wsq;
