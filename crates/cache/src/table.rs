//! The in-memory half of the cache: a sharded concurrent map from
//! `(state fingerprint, next thread)` keys to the best coverage credit
//! recorded for that subtree.
//!
//! The table is on every worker's work-item emission path, so it is
//! sharded into a fixed power-of-two number of `RwLock`ed maps — probes
//! for different keys almost never contend, and the per-shard critical
//! section is a single hash-map entry operation. There is no global
//! lock and no resizing barrier.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use icb_core::hash::mix64;
use icb_core::{MetricsRegistry, Tid};

/// Number of independent locks. 64 comfortably exceeds the worker
/// counts the parallel driver spawns.
const SHARDS: usize = 64;

/// A sharded `(state, thread) -> credit` map with atomic
/// probe-and-record semantics.
pub struct FingerprintTable {
    shards: Vec<RwLock<HashMap<u64, u32>>>,
    probes: AtomicU64,
    hits: AtomicU64,
    /// Live per-shard probe/hit mirroring, when a run attaches a
    /// registry ([`attach_metrics`](FingerprintTable::attach_metrics)).
    metrics: OnceLock<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for FingerprintTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FingerprintTable")
            .field("entries", &self.len())
            .field("probes", &self.probes.load(Ordering::Relaxed))
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FingerprintTable {
    fn default() -> Self {
        FingerprintTable {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }
}

/// Collapses a `(state, choice)` pair into the table's key. The state
/// fingerprint is already well-mixed; fold the thread id in and re-mix
/// so that the pair — not just the state — addresses the entry.
pub fn table_key(state: u64, choice: Tid) -> u64 {
    mix64(state ^ (choice.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl FingerprintTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FingerprintTable::default()
    }

    /// Attaches a live metrics registry: every subsequent probe also
    /// bumps the registry's per-shard probe/hit counters. First
    /// attachment wins; later calls are ignored.
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        let _ = self.metrics.set(registry);
    }

    /// Atomically tests-and-records: returns `true` (covered — prune)
    /// when an entry for `(state, choice)` already holds at least
    /// `credit`; otherwise records `credit` and returns `false`. Of N
    /// racing callers with the same key and credit, exactly one gets
    /// `false` — the shard's write lock makes the entry update atomic.
    pub fn probe(&self, state: u64, choice: Tid, credit: u32) -> bool {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let key = table_key(state, choice);
        let index = (key as usize) % SHARDS;
        let shard = &self.shards[index];
        let covered = 'probe: {
            {
                // Fast path: most probes on a warm table are pure reads.
                let map = shard.read().expect("table shard poisoned");
                if map.get(&key).is_some_and(|&have| have >= credit) {
                    break 'probe true;
                }
            }
            let mut map = shard.write().expect("table shard poisoned");
            match map.entry(key) {
                Entry::Occupied(mut e) => {
                    if *e.get() >= credit {
                        true
                    } else {
                        *e.get_mut() = credit;
                        false
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(credit);
                    false
                }
            }
        };
        if covered {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(m) = self.metrics.get() {
            m.cache_table_probe(index, covered);
        }
        covered
    }

    /// Inserts a pre-keyed entry (segment load), keeping the larger
    /// credit on collision.
    pub fn load(&self, key: u64, credit: u32) {
        let shard = &self.shards[(key as usize) % SHARDS];
        let mut map = shard.write().expect("table shard poisoned");
        map.entry(key)
            .and_modify(|have| *have = (*have).max(credit))
            .or_insert(credit);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("table shard poisoned").len())
            .sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime probe / hit counters (diagnostics for `cache stats`).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.probes.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }

    /// Every `(key, credit)` entry, sorted by key — the canonical order
    /// the segment codec writes.
    pub fn entries(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("table shard poisoned")
                    .iter()
                    .map(|(&k, &c)| (k, c))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_records_then_covers() {
        let t = FingerprintTable::new();
        assert!(!t.probe(0xabc, Tid(1), 3), "first probe records");
        assert!(t.probe(0xabc, Tid(1), 3), "equal credit is covered");
        assert!(t.probe(0xabc, Tid(1), 2), "smaller credit is covered");
        assert!(!t.probe(0xabc, Tid(1), 4), "larger credit re-records");
        assert!(t.probe(0xabc, Tid(1), 4));
    }

    #[test]
    fn choice_distinguishes_entries() {
        let t = FingerprintTable::new();
        assert!(!t.probe(0xabc, Tid(0), 1));
        assert!(!t.probe(0xabc, Tid(1), 1), "different thread, new entry");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn exactly_one_racing_prober_records() {
        let t = std::sync::Arc::new(FingerprintTable::new());
        let recorded: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let t = std::sync::Arc::clone(&t);
                    s.spawn(move || usize::from(!t.probe(0x51a7e, Tid(2), 7)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(recorded, 1, "one store, seven hits");
    }

    #[test]
    fn load_keeps_best_credit() {
        let t = FingerprintTable::new();
        t.load(42, 3);
        t.load(42, 1);
        assert_eq!(t.entries(), vec![(42, 3)]);
        t.load(42, 9);
        assert_eq!(t.entries(), vec![(42, 9)]);
    }
}
