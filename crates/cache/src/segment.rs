//! The disk-backed half of the cache: one *segment* file per completed
//! run, holding the run's new table entries, its visited-state seeds
//! and any certification it earned.
//!
//! The format follows the checkpoint codec in `icb-core::snapshot`: a
//! hand-rolled little-endian binary layout (the workspace builds
//! hermetically, with no serialization crates) of an 8-byte magic, a
//! format version, the payload length, an FNV-1a checksum of the
//! payload, then the payload. Files are written atomically (temp file,
//! fsync, rename), so a `SIGKILL` mid-write never destroys an existing
//! segment, and corrupted or truncated files are rejected with a
//! structured [`CacheError`], never a panic.
//!
//! Segments are append-only at the directory level: each persisting run
//! adds `seg-<n>.bin` next to its predecessors instead of rewriting
//! them. [`CacheStore::open`](crate::CacheStore::open) merges all
//! segments of a program and compacts them back into a single file.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use icb_core::hash::fingerprint_bytes;
use icb_core::Certification;

/// Magic bytes opening every cache segment file.
pub(crate) const MAGIC: &[u8; 8] = b"ICBCACHE";
/// Current segment format version. Bump on any layout change —
/// including any change to the fingerprint functions in
/// `icb-core::hash`, which would silently re-key every entry.
/// Version 2 added the certification fault bound.
pub const VERSION: u32 = 2;
/// Fixed header size: magic + version + payload length + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a cache segment or store operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// The file does not start with the segment magic bytes.
    BadMagic,
    /// The file uses a format version this build does not understand.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload does.
    Truncated,
    /// The payload checksum does not match its contents.
    ChecksumMismatch,
    /// The payload decodes to structurally invalid data.
    Corrupt(String),
    /// The segment was recorded for a different program than the one
    /// being explored — its entries would poison the search.
    WrongProgram {
        /// The identity hash of the program under exploration.
        expected: u64,
        /// The identity hash recorded in the segment.
        found: u64,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache I/O error: {e}"),
            CacheError::BadMagic => write!(f, "not a cache segment (bad magic)"),
            CacheError::UnsupportedVersion(v) => {
                write!(f, "unsupported cache segment format version {v}")
            }
            CacheError::Truncated => write!(f, "cache segment is truncated"),
            CacheError::ChecksumMismatch => {
                write!(f, "cache segment is corrupted (checksum mismatch)")
            }
            CacheError::Corrupt(what) => write!(f, "cache segment is corrupted ({what})"),
            CacheError::WrongProgram { expected, found } => write!(
                f,
                "cache segment belongs to program {found:016x}, not {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

/// The decoded contents of one segment file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Segment {
    /// Identity hash of the program the entries describe.
    pub program_id: u64,
    /// `(table key, coverage credit)` pairs, sorted by key.
    pub entries: Vec<(u64, u32)>,
    /// Distinct state fingerprints the recording run visited, sorted.
    pub seeds: Vec<u64>,
    /// Certifications earned by the recording run (usually 0 or 1).
    pub certifications: Vec<Certification>,
}

impl Segment {
    /// Serializes the segment and writes it to `path` atomically.
    pub fn write_to(&self, path: &Path) -> Result<(), CacheError> {
        let payload = self.encode();
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fingerprint_bytes(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let mut tmp_os = path.as_os_str().to_owned();
        tmp_os.push(".tmp");
        let tmp = PathBuf::from(tmp_os);
        // Transient write failures (NFS hiccups, momentary ENOSPC) must
        // not forfeit the run's coverage: retry the whole atomic write a
        // bounded number of times before reporting the error.
        icb_core::retry::with_backoff("cache segment write", || {
            let io = |e: std::io::Error| CacheError::Io(e.to_string());
            let mut file = fs::File::create(&tmp).map_err(io)?;
            file.write_all(&bytes).map_err(io)?;
            file.sync_all().map_err(io)?;
            drop(file);
            fs::rename(&tmp, path).map_err(io)
        })
    }

    /// Reads and validates a segment from `path`.
    pub fn read_from(path: &Path) -> Result<Self, CacheError> {
        let bytes = fs::read(path).map_err(|e| CacheError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Decodes a segment from its on-disk byte representation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CacheError> {
        if bytes.len() < 8 {
            return Err(CacheError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(CacheError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(CacheError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(CacheError::UnsupportedVersion(version));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(CacheError::Truncated);
        }
        if fingerprint_bytes(payload) != checksum {
            return Err(CacheError::ChecksumMismatch);
        }
        Self::decode(&mut Reader {
            buf: payload,
            pos: 0,
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.u64(self.program_id);
        w.len(self.entries.len());
        for &(key, credit) in &self.entries {
            w.u64(key);
            w.u32(credit);
        }
        w.len(self.seeds.len());
        for &fp in &self.seeds {
            w.u64(fp);
        }
        w.len(self.certifications.len());
        for cert in &self.certifications {
            w.str(&cert.strategy);
            w.opt_usize(cert.bound);
            w.usize(cert.fault_bound);
            w.usize(cert.executions);
            w.usize(cert.distinct_states);
        }
        w.buf
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CacheError> {
        let program_id = r.u64()?;
        let n = r.len()?;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            entries.push((r.u64()?, r.u32()?));
        }
        let n = r.len()?;
        let mut seeds = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            seeds.push(r.u64()?);
        }
        let n = r.len()?;
        let mut certifications = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            certifications.push(Certification {
                strategy: r.str()?,
                bound: r.opt_usize()?,
                fault_bound: r.usize()?,
                executions: r.usize()?,
                distinct_states: r.usize()?,
            });
        }
        if r.pos != r.buf.len() {
            return Err(CacheError::Corrupt("trailing bytes after payload".into()));
        }
        Ok(Segment {
            program_id,
            entries,
            seeds,
            certifications,
        })
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn len(&mut self, v: usize) {
        self.usize(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                self.usize(x);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CacheError> {
        let end = self.pos.checked_add(n).ok_or(CacheError::Truncated)?;
        if end > self.buf.len() {
            return Err(CacheError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, CacheError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CacheError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CacheError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, CacheError> {
        usize::try_from(self.u64()?).map_err(|_| CacheError::Corrupt("value exceeds usize".into()))
    }
    fn len(&mut self) -> Result<usize, CacheError> {
        self.usize()
    }
    fn bool(&mut self) -> Result<bool, CacheError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CacheError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }
    fn opt_usize(&mut self) -> Result<Option<usize>, CacheError> {
        if self.bool()? {
            Ok(Some(self.usize()?))
        } else {
            Ok(None)
        }
    }
    fn str(&mut self) -> Result<String, CacheError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CacheError::Corrupt("invalid UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            program_id: 0xfeed_f00d_dead_beef,
            entries: vec![(1, 7), (9, u32::MAX), (42, 0)],
            seeds: vec![3, 5, 8],
            certifications: vec![Certification {
                strategy: "icb".into(),
                bound: Some(2),
                fault_bound: 1,
                executions: 1234,
                distinct_states: 321,
            }],
        }
    }

    fn to_bytes(seg: &Segment) -> Vec<u8> {
        let payload = seg.encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fingerprint_bytes(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("icb-cache-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-0.bin");
        let seg = sample();
        seg.write_to(&path).unwrap();
        assert_eq!(Segment::read_from(&path).unwrap(), seg);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let mut bytes = to_bytes(&sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert_eq!(
            Segment::from_bytes(&bytes),
            Err(CacheError::ChecksumMismatch)
        );

        let mut bad_magic = to_bytes(&sample());
        bad_magic[0] = b'X';
        assert_eq!(Segment::from_bytes(&bad_magic), Err(CacheError::BadMagic));

        let truncated = &to_bytes(&sample())[..40];
        assert_eq!(Segment::from_bytes(truncated), Err(CacheError::Truncated));

        let mut future = to_bytes(&sample());
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Segment::from_bytes(&future),
            Err(CacheError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn errors_render_clear_messages() {
        assert!(CacheError::ChecksumMismatch.to_string().contains("corrupt"));
        let e = CacheError::WrongProgram {
            expected: 0xa,
            found: 0xb,
        };
        assert!(e.to_string().contains("000000000000000b"));
    }
}
