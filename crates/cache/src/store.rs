//! The cache handle tying the pieces together: an on-disk store opened
//! for one program, the in-memory [`FingerprintTable`] the search
//! probes, the visited-state seed set, and the certification ledger.
//!
//! # Lifecycle
//!
//! [`CacheStore::open`] loads and merges every segment recorded for the
//! program (compacting multiple segments back into one), the search
//! probes and notes states through the [`ExplorationCache`] trait, and
//! [`certify`](ExplorationCache::certify) — which the session only
//! calls after a *clean, fully explored, bug-free* run — persists the
//! merged table, seed set and ledger as a new segment. A run that is
//! killed or aborts mid-way persists nothing: its optimistic in-memory
//! stores die with it, so segments on disk only ever describe subtrees
//! that were actually explored to completion.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use icb_core::{Certification, ExplorationCache, Tid};

use crate::segment::{CacheError, Segment};
use crate::table::FingerprintTable;

/// Shards for the visited-state set (contended by every worker at every
/// execution step).
const STATE_SHARDS: usize = 16;

/// A disk-backed exploration cache for one program.
pub struct CacheStore {
    dir: PathBuf,
    program_id: u64,
    table: FingerprintTable,
    /// Seed states inherited from previous runs (sorted).
    loaded_seeds: Vec<u64>,
    /// All states seen — loaded seeds plus this run's visits.
    states: Vec<Mutex<HashSet<u64>>>,
    certs: Mutex<Vec<Certification>>,
    persist_error: Mutex<Option<CacheError>>,
    /// Segments set aside as `.corrupt` when this store was opened.
    quarantined: usize,
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("dir", &self.dir)
            .field("program_id", &format_args!("{:016x}", self.program_id))
            .field("table", &self.table)
            .finish_non_exhaustive()
    }
}

/// Aggregate numbers for `explore cache stats`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Identity hash of the program this store describes.
    pub program_id: u64,
    /// `(state, thread)` subtree entries currently in the table.
    pub entries: usize,
    /// Seed states inherited from previous runs.
    pub seeds: usize,
    /// The certification ledger.
    pub certifications: Vec<Certification>,
    /// Lifetime probes answered by the in-memory table.
    pub probes: u64,
    /// Lifetime probe hits.
    pub hits: u64,
    /// Segments quarantined as `.corrupt` when the store was opened.
    pub quarantined: usize,
}

impl CacheStore {
    /// Opens (creating if needed) the cache for program `program_id`
    /// under `root`, merging and compacting any existing segments.
    ///
    /// A corrupted or foreign segment fails the open with a structured
    /// [`CacheError`] — a poisoned cache must never silently prune.
    pub fn open(root: &Path, program_id: u64) -> Result<Self, CacheError> {
        let dir = program_dir(root, program_id);
        std::fs::create_dir_all(&dir).map_err(|e| CacheError::Io(e.to_string()))?;
        let table = FingerprintTable::new();
        let mut seeds: HashSet<u64> = HashSet::new();
        let mut certs: Vec<Certification> = Vec::new();
        let mut paths = Vec::new();
        let mut quarantined = 0usize;
        for path in segment_paths(&dir)? {
            match Segment::read_from(&path) {
                Ok(seg) if seg.program_id == program_id => {
                    for (key, credit) in seg.entries {
                        table.load(key, credit);
                    }
                    seeds.extend(seg.seeds);
                    for cert in seg.certifications {
                        if !certs.contains(&cert) {
                            certs.push(cert);
                        }
                    }
                    paths.push(path);
                }
                // A foreign segment is a usage error, not damage: its
                // entries would poison the search, so refuse loudly
                // instead of silently discarding it.
                Ok(seg) => {
                    return Err(CacheError::WrongProgram {
                        expected: program_id,
                        found: seg.program_id,
                    })
                }
                // Damaged or version-skewed segments must not kill the
                // run: set them aside under a `.corrupt` name (for
                // post-mortems) and continue with a cold cache. Losing
                // coverage credit is always sound — the cache only ever
                // *prunes*.
                Err(
                    err @ (CacheError::BadMagic
                    | CacheError::Truncated
                    | CacheError::ChecksumMismatch
                    | CacheError::Corrupt(_)
                    | CacheError::UnsupportedVersion(_)),
                ) => {
                    let mut corrupt = path.as_os_str().to_owned();
                    corrupt.push(".corrupt");
                    let renamed = std::fs::rename(&path, PathBuf::from(corrupt));
                    eprintln!(
                        "warning: cache segment {} unreadable ({err}); {}, continuing cold",
                        path.display(),
                        if renamed.is_ok() {
                            "quarantined as .corrupt"
                        } else {
                            "quarantine rename failed; ignoring it"
                        },
                    );
                    quarantined += 1;
                }
                // Filesystem-level failures stay fatal: nothing says the
                // data is bad, so quarantining would destroy good state.
                Err(e) => return Err(e),
            }
        }
        let mut loaded_seeds: Vec<u64> = seeds.iter().copied().collect();
        loaded_seeds.sort_unstable();
        let states: Vec<Mutex<HashSet<u64>>> = (0..STATE_SHARDS)
            .map(|shard| {
                Mutex::new(
                    loaded_seeds
                        .iter()
                        .copied()
                        .filter(|fp| (*fp as usize) % STATE_SHARDS == shard)
                        .collect(),
                )
            })
            .collect();
        let store = CacheStore {
            dir,
            program_id,
            table,
            loaded_seeds,
            states,
            certs: Mutex::new(certs),
            persist_error: Mutex::new(None),
            quarantined,
        };
        if paths.len() > 1 {
            // Compact: one merged segment replaces the pile.
            store.persist()?;
        }
        Ok(store)
    }

    /// The identity hash this store was opened for.
    pub fn program_id(&self) -> u64 {
        self.program_id
    }

    /// Aggregate statistics (for `explore cache stats`).
    pub fn stats(&self) -> StoreStats {
        let (probes, hits) = self.table.counters();
        StoreStats {
            program_id: self.program_id,
            entries: self.table.len(),
            seeds: self.states.iter().map(|s| s.lock().unwrap().len()).sum(),
            certifications: self.certs.lock().unwrap().clone(),
            probes,
            hits,
            quarantined: self.quarantined,
        }
    }

    /// The error of the last failed persist, if any. [`certify`]
    /// (ExplorationCache::certify) cannot return one through the trait,
    /// so callers that care (the CLI) collect it here.
    pub fn last_persist_error(&self) -> Option<CacheError> {
        self.persist_error.lock().unwrap().clone()
    }

    fn snapshot_states(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .states
            .iter()
            .flat_map(|s| s.lock().unwrap().iter().copied().collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        all
    }

    /// Writes the merged table + seeds + ledger as a fresh segment and
    /// removes the segments it supersedes.
    fn persist(&self) -> Result<(), CacheError> {
        let seg = Segment {
            program_id: self.program_id,
            entries: self.table.entries(),
            seeds: self.snapshot_states(),
            certifications: self.certs.lock().unwrap().clone(),
        };
        let old = segment_paths(&self.dir)?;
        let next = old.last().and_then(|p| segment_seq(p)).map_or(0, |n| n + 1);
        seg.write_to(&self.dir.join(format!("seg-{next}.bin")))?;
        // A crash here leaves extra segments behind; the next open
        // merges and re-compacts them, so this cleanup is best-effort.
        for path in old {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

impl ExplorationCache for CacheStore {
    fn probe(&self, state: u64, choice: Tid, credit: u32) -> bool {
        self.table.probe(state, choice, credit)
    }

    fn seed_states(&self) -> Vec<u64> {
        self.loaded_seeds.clone()
    }

    fn note_state(&self, state: u64) {
        self.states[(state as usize) % STATE_SHARDS]
            .lock()
            .unwrap()
            .insert(state);
    }

    fn find_certification(
        &self,
        strategy: &str,
        target: Option<usize>,
        fault_target: usize,
    ) -> Option<Certification> {
        self.certs
            .lock()
            .unwrap()
            .iter()
            .find(|c| c.covers(strategy, target, fault_target))
            .cloned()
    }

    fn attach_metrics(&self, registry: &std::sync::Arc<icb_core::MetricsRegistry>) {
        self.table.attach_metrics(std::sync::Arc::clone(registry));
    }

    fn certify(&self, certification: Certification) {
        {
            let mut certs = self.certs.lock().unwrap();
            // The new certificate supersedes every weaker same-strategy
            // one it covers.
            certs.retain(|old| {
                old.strategy != certification.strategy
                    || !certification.covers(&old.strategy, old.bound, old.fault_bound)
            });
            certs.push(certification);
        }
        if let Err(e) = self.persist() {
            *self.persist_error.lock().unwrap() = Some(e);
        }
    }
}

/// One row of `explore cache ls`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramEntry {
    /// Identity hash parsed from the directory name.
    pub program_id: u64,
    /// Segment files on disk.
    pub segments: usize,
    /// Total size of the segment files in bytes.
    pub bytes: u64,
}

/// Lists every program directory under `root`.
pub fn list_programs(root: &Path) -> Result<Vec<ProgramEntry>, CacheError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(CacheError::Io(e.to_string())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| CacheError::Io(e.to_string()))?;
        let name = entry.file_name();
        let Some(program_id) = name.to_str().and_then(|s| u64::from_str_radix(s, 16).ok()) else {
            continue;
        };
        if !entry.path().is_dir() {
            continue;
        }
        let segs = segment_paths(&entry.path())?;
        let bytes = segs
            .iter()
            .map(|p| p.metadata().map(|m| m.len()).unwrap_or(0))
            .sum();
        out.push(ProgramEntry {
            program_id,
            segments: segs.len(),
            bytes,
        });
    }
    out.sort_by_key(|e| e.program_id);
    Ok(out)
}

/// Removes the cached data of one program (its whole directory).
/// Returns whether anything existed.
pub fn invalidate(root: &Path, program_id: u64) -> Result<bool, CacheError> {
    let dir = program_dir(root, program_id);
    if !dir.exists() {
        return Ok(false);
    }
    std::fs::remove_dir_all(&dir)
        .map(|()| true)
        .map_err(|e| CacheError::Io(e.to_string()))
}

/// Compacts every program under `root` (merging multi-segment piles)
/// and drops unreadable segments and empty directories. Returns
/// `(programs kept, segments removed)`.
pub fn gc(root: &Path) -> Result<(usize, usize), CacheError> {
    let mut kept = 0;
    let mut removed = 0;
    for prog in list_programs(root)? {
        let dir = program_dir(root, prog.program_id);
        // Drop segments that no longer decode (corruption, version
        // skew); whatever survives is merged by `open`.
        let mut readable = 0;
        for path in segment_paths(&dir)? {
            match Segment::read_from(&path) {
                Ok(seg) if seg.program_id == prog.program_id => readable += 1,
                _ => {
                    std::fs::remove_file(&path).map_err(|e| CacheError::Io(e.to_string()))?;
                    removed += 1;
                }
            }
        }
        if readable == 0 {
            let _ = std::fs::remove_dir(&dir);
            continue;
        }
        CacheStore::open(root, prog.program_id)?;
        kept += 1;
    }
    Ok((kept, removed))
}

fn program_dir(root: &Path, program_id: u64) -> PathBuf {
    root.join(format!("{program_id:016x}"))
}

/// Segment files of one program directory, sorted by sequence number.
fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>, CacheError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(CacheError::Io(e.to_string())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| CacheError::Io(e.to_string()))?;
        let path = entry.path();
        if segment_seq(&path).is_some() {
            out.push(path);
        }
    }
    out.sort_by_key(|p| segment_seq(p));
    Ok(out)
}

fn segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("seg-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("icb-cache-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cold_open_is_empty_and_warm_open_restores() {
        let root = tmp_root("roundtrip");
        let store = CacheStore::open(&root, 7).unwrap();
        assert!(store.seed_states().is_empty());
        assert!(!store.probe(0x11, Tid(0), 3));
        assert!(!store.probe(0x22, Tid(1), 3));
        store.note_state(0xaa);
        store.note_state(0xbb);
        store.certify(Certification {
            strategy: "icb".into(),
            bound: Some(2),
            fault_bound: 1,
            executions: 10,
            distinct_states: 2,
        });
        assert_eq!(store.last_persist_error(), None);
        drop(store);

        let warm = CacheStore::open(&root, 7).unwrap();
        assert_eq!(warm.seed_states(), vec![0xaa, 0xbb]);
        assert!(warm.probe(0x11, Tid(0), 3), "entry survived the disk trip");
        assert!(warm.probe(0x11, Tid(0), 2));
        assert!(!warm.probe(0x11, Tid(0), 9), "larger credit still misses");
        assert_eq!(
            warm.find_certification("icb", Some(1), 0)
                .unwrap()
                .executions,
            10
        );
        assert!(
            warm.find_certification("icb", Some(1), 1).is_some(),
            "fault bound survived the disk trip"
        );
        assert!(warm.find_certification("icb", Some(1), 2).is_none());
        assert!(warm.find_certification("icb", Some(3), 0).is_none());
        assert!(warm.find_certification("dfs", Some(1), 0).is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stronger_certification_supersedes_weaker() {
        let root = tmp_root("supersede");
        let store = CacheStore::open(&root, 1).unwrap();
        let base = Certification {
            strategy: "icb".into(),
            bound: Some(1),
            fault_bound: 0,
            executions: 5,
            distinct_states: 3,
        };
        store.certify(base.clone());
        store.certify(Certification {
            bound: Some(4),
            ..base.clone()
        });
        assert_eq!(store.stats().certifications.len(), 1);
        assert!(store.find_certification("icb", Some(4), 0).is_some());
        // A faulted certificate subsumes the fault-free one, but not
        // vice versa: certifying fault-free again keeps both.
        store.certify(Certification {
            bound: Some(4),
            fault_bound: 2,
            ..base.clone()
        });
        assert_eq!(store.stats().certifications.len(), 1);
        store.certify(base);
        assert_eq!(store.stats().certifications.len(), 2);
        assert!(store.find_certification("icb", Some(4), 2).is_some());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wrong_program_is_rejected() {
        let root = tmp_root("poison");
        let store = CacheStore::open(&root, 0xaaaa).unwrap();
        store.certify(Certification {
            strategy: "icb".into(),
            bound: None,
            fault_bound: 0,
            executions: 1,
            distinct_states: 1,
        });
        drop(store);
        // Copy the segment under a different program's directory.
        let src = segment_paths(&program_dir(&root, 0xaaaa)).unwrap()[0].clone();
        std::fs::create_dir_all(program_dir(&root, 0xbbbb)).unwrap();
        std::fs::copy(&src, program_dir(&root, 0xbbbb).join("seg-0.bin")).unwrap();
        assert!(matches!(
            CacheStore::open(&root, 0xbbbb),
            Err(CacheError::WrongProgram { .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_segment_is_quarantined_and_open_continues_cold() {
        let root = tmp_root("bitflip");
        let store = CacheStore::open(&root, 0xcccc).unwrap();
        store.note_state(0x42);
        store.certify(Certification {
            strategy: "icb".into(),
            bound: None,
            fault_bound: 0,
            executions: 1,
            distinct_states: 1,
        });
        drop(store);
        // Flip one payload byte: the checksum catches it, the store
        // renames the file aside and opens cold instead of dying.
        let seg = segment_paths(&program_dir(&root, 0xcccc)).unwrap()[0].clone();
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&seg, bytes).unwrap();

        let cold = CacheStore::open(&root, 0xcccc).unwrap();
        assert!(cold.seed_states().is_empty(), "cold: no seeds survive");
        assert!(cold.find_certification("icb", None, 0).is_none());
        assert_eq!(cold.stats().quarantined, 1);
        assert!(!seg.exists(), "damaged segment moved aside");
        let mut corrupt = seg.as_os_str().to_owned();
        corrupt.push(".corrupt");
        assert!(
            PathBuf::from(corrupt).exists(),
            "damaged bytes kept for post-mortem"
        );
        // The quarantined file is invisible to later opens and does not
        // block fresh certifications.
        cold.certify(Certification {
            strategy: "icb".into(),
            bound: Some(1),
            fault_bound: 0,
            executions: 2,
            distinct_states: 1,
        });
        assert_eq!(cold.last_persist_error(), None);
        drop(cold);
        let warm = CacheStore::open(&root, 0xcccc).unwrap();
        assert_eq!(warm.stats().quarantined, 0);
        assert!(warm.find_certification("icb", Some(1), 0).is_some());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn ls_gc_invalidate_admin_flows() {
        let root = tmp_root("admin");
        for id in [3u64, 5] {
            let store = CacheStore::open(&root, id).unwrap();
            store.certify(Certification {
                strategy: "icb".into(),
                bound: None,
                fault_bound: 0,
                executions: 2,
                distinct_states: 2,
            });
        }
        let ls = list_programs(&root).unwrap();
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0].program_id, 3);
        assert_eq!(ls[0].segments, 1);
        assert!(ls[0].bytes > 0);

        // Corrupt program 5's segment; gc must drop it and keep 3.
        let seg5 = segment_paths(&program_dir(&root, 5)).unwrap()[0].clone();
        std::fs::write(&seg5, b"garbage").unwrap();
        let (kept, removed) = gc(&root).unwrap();
        assert_eq!((kept, removed), (1, 1));
        assert_eq!(list_programs(&root).unwrap().len(), 1);

        assert!(invalidate(&root, 3).unwrap());
        assert!(!invalidate(&root, 3).unwrap());
        assert!(list_programs(&root).unwrap().is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn multiple_segments_compact_on_open() {
        let root = tmp_root("compact");
        let dir = program_dir(&root, 9);
        std::fs::create_dir_all(&dir).unwrap();
        for (i, key) in [(0u64, 100u64), (1, 200)] {
            Segment {
                program_id: 9,
                entries: vec![(key, 3)],
                seeds: vec![key],
                certifications: Vec::new(),
            }
            .write_to(&dir.join(format!("seg-{i}.bin")))
            .unwrap();
        }
        let store = CacheStore::open(&root, 9).unwrap();
        assert_eq!(store.stats().entries, 2);
        assert_eq!(store.seed_states(), vec![100, 200]);
        assert_eq!(segment_paths(&dir).unwrap().len(), 1, "compacted");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
