//! Persistent state-fingerprint cache for the exploration stack.
//!
//! Three layers, one handle:
//!
//! * [`FingerprintTable`] — a sharded concurrent map from
//!   `(state fingerprint, next thread)` to the best coverage credit
//!   recorded for that subtree. The search drivers probe it at every
//!   work-item emission and skip subtrees a previous item (or a
//!   previous *run*) already explored at least as thoroughly.
//! * [`Segment`] — the versioned, checksummed on-disk unit. Segments
//!   are written atomically (temp file + rename), keyed by a program
//!   identity hash, and compacted back into one file on load.
//! * [`CacheStore`] — the [`ExplorationCache`](icb_core::ExplorationCache)
//!   implementation the session binds: it merges segments on open,
//!   answers probes from the table, collects visited states as seeds,
//!   and — only when the session certifies a clean completed run —
//!   persists everything plus a certification ledger entry
//!   ("program H is bug-free under strategy X up to bound c") that
//!   lets an identical later search be answered without running at
//!   all.
//!
//! Soundness note: pruning on cached fingerprints is exact only when
//! the program's fingerprints are exact (the explicit-state VM). The
//! session enforces that; hash-based happens-before fingerprints
//! require an explicit heuristic opt-in and never certify or persist.

pub mod segment;
pub mod store;
pub mod table;

pub use segment::{CacheError, Segment, VERSION};
pub use store::{gc, invalidate, list_programs, CacheStore, ProgramEntry, StoreStats};
pub use table::{table_key, FingerprintTable};
