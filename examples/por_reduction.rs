//! Partial-order reduction in action — the paper's future-work item.
//!
//! Sleep sets prune interleavings that only reorder independent steps.
//! On the file-system model (whose threads mostly touch disjoint inodes
//! and blocks), the reduction shrinks the explored tree dramatically
//! while preserving every bug verdict.
//!
//! ```sh
//! cargo run --release --example por_reduction
//! ```

use icb::statevm::por::{sleep_set_dfs, PorConfig};
use icb::workloads::filesystem::{filesystem_model, FsParams};
use icb::workloads::txnmgr::{txnmgr_model, TxnVariant};

fn main() {
    let model = filesystem_model(FsParams {
        threads: 3,
        inodes: 2,
        blocks: 2,
    });

    println!("file-system model, 3 threads:");
    let plain = sleep_set_dfs(
        &model,
        &PorConfig {
            sleep_sets: false,
            ..PorConfig::default()
        },
    );
    let reduced = sleep_set_dfs(&model, &PorConfig::default());
    println!(
        "  plain DFS:   {:>8} transitions, {:>6} executions",
        plain.transitions, plain.executions
    );
    println!(
        "  sleep sets:  {:>8} transitions, {:>6} executions  ({:.1}x fewer)",
        reduced.transitions,
        reduced.executions,
        plain.transitions as f64 / reduced.transitions as f64
    );
    assert_eq!(plain.has_bug(), reduced.has_bug());

    println!();
    println!("and the reduction never hides a bug — transaction manager, torn flush:");
    let buggy = txnmgr_model(TxnVariant::TornFlush);
    let plain = sleep_set_dfs(
        &buggy,
        &PorConfig {
            sleep_sets: false,
            ..PorConfig::default()
        },
    );
    let reduced = sleep_set_dfs(&buggy, &PorConfig::default());
    println!(
        "  plain DFS:  {} failing executions in {} transitions",
        plain.assertion_failures.len(),
        plain.transitions
    );
    println!(
        "  sleep sets: {} failing executions in {} transitions",
        reduced.assertion_failures.len(),
        reduced.transitions
    );
    assert!(plain.has_bug() && reduced.has_bug());
}
