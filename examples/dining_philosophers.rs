//! Dining philosophers: the model checker proves the naive protocol
//! deadlocks and certifies the resource-ordering fix.
//!
//! ```sh
//! cargo run --release --example dining_philosophers
//! ```

use std::sync::Arc;

use icb::core::render;
use icb::core::{ControlledProgram, ExecutionOutcome, NullSink, ReplayScheduler};
use icb::runtime::{sync::Mutex, thread, RuntimeProgram};
use icb::{Search, SearchConfig};

fn philosophers(n: usize, ordered: bool) -> RuntimeProgram {
    RuntimeProgram::new(move || {
        let forks: Arc<Vec<Mutex<()>>> = Arc::new((0..n).map(|_| Mutex::new(())).collect());
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let forks = Arc::clone(&forks);
                thread::spawn(move || {
                    let (left, right) = (i, (i + 1) % n);
                    let (first, second) = if ordered && left > right {
                        (right, left) // global order: lower-numbered fork first
                    } else {
                        (left, right) // naive: always left first → cycle
                    };
                    let _f1 = forks[first].lock();
                    let _f2 = forks[second].lock();
                    // eat
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    })
}

fn main() {
    let n = 3;

    println!("== naive protocol: everyone grabs the left fork first ==");
    let naive = philosophers(n, false);
    let bug = Search::over(&naive)
        .config(SearchConfig {
            max_executions: Some(500_000),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
        .bugs
        .into_iter()
        .next()
        .expect("the classic deadlock");
    match &bug.outcome {
        ExecutionOutcome::Deadlock { blocked } => {
            println!(
                "deadlock: {} threads blocked — each philosopher holds one \
                 fork and waits for the next (plus the joining harness)",
                blocked.len()
            );
        }
        other => panic!("expected a deadlock, got {other}"),
    }
    println!(
        "minimal preemptions: {} (each philosopher must be wedged between forks)",
        bug.preemptions
    );
    let mut replay = ReplayScheduler::new(bug.schedule.clone());
    let result = naive.execute(&mut replay, &mut NullSink);
    println!("{}", render::lanes(&result.trace));

    println!();
    println!("== ordered protocol: forks acquired in global order ==");
    let fixed = philosophers(n, true);
    let report = Search::over(&fixed)
        .config(SearchConfig {
            preemption_bound: Some(2),
            max_executions: Some(500_000),
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    assert!(report.bugs.is_empty());
    println!(
        "no deadlock in any of the {} executions with ≤ {} preemptions",
        report.executions,
        report.completed_bound.expect("bound completed"),
    );
}
