//! Writing your own explicit-state model: a flag-based mutual-exclusion
//! protocol, one correct and one broken version.
//!
//! The broken version checks the other thread's flag *before* raising
//! its own — the window between check and raise lets both threads into
//! the critical section, but only if *both* threads are preempted inside
//! their windows: a bound-2 bug that bound-1 search certifies away.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use icb::statevm::{ExplicitConfig, ExplicitIcb, Model, ModelBuilder};

/// `check_first = false`: raise own flag, then check the other's
/// (correct under sequential consistency).
/// `check_first = true`: check, then raise (broken).
fn mutex_protocol(check_first: bool) -> Model {
    let mut m = ModelBuilder::new();
    let flags = [m.global("flag0", 0), m.global("flag1", 0)];
    let critical = m.global("critical", 0);
    for me in 0..2 {
        m.thread(&format!("t{me}"), |t| {
            let seen = t.local();
            let old = t.local();
            let skip = t.new_label();
            if check_first {
                // BUG: the guard races with the announcement.
                t.load(flags[1 - me], seen);
                t.jump_if(seen.eq(1), skip);
                t.store(flags[me], 1);
            } else {
                t.store(flags[me], 1);
                t.load(flags[1 - me], seen);
                t.jump_if(seen.eq(1), skip);
            }
            // Critical section.
            t.fetch_add(critical, 1, old);
            t.assert(old.eq(0), "mutual exclusion violated");
            t.fetch_sub(critical, 1, old);
            t.place(skip);
        });
    }
    m.build()
}

fn main() {
    println!("== correct protocol: raise flag, then check ==");
    let report = ExplicitIcb::new(ExplicitConfig::default()).run(&mutex_protocol(false));
    println!(
        "explored the full state space ({} states, completed = {}): {} bugs",
        report.distinct_states,
        report.completed,
        report.bugs.len()
    );
    assert!(report.bugs.is_empty());

    println!();
    println!("== broken protocol: check flag, then raise ==");
    let report = ExplicitIcb::new(ExplicitConfig {
        stop_on_first_bug: true,
        ..ExplicitConfig::default()
    })
    .run(&mutex_protocol(true));
    let bug = report.bugs.first().expect("violation is reachable");
    println!("{} — minimal context bound {}", bug.message, bug.bound);
    println!(
        "witness schedule: {:?}",
        bug.schedule.iter().map(|t| t.index()).collect::<Vec<_>>()
    );
    assert_eq!(
        bug.bound, 2,
        "both check-then-raise windows must interleave"
    );
    println!();
    println!(
        "the violation needs 2 preemptions: each thread must be wedged \
         between its check and its raise."
    );
}
