//! Quickstart: find a classic lost-update bug with the minimum number of
//! preemptions, then reproduce it deterministically.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use icb::core::{ControlledProgram, NullSink, ReplayScheduler};
use icb::runtime::{sync::Mutex, thread, RuntimeProgram};
use icb::{Search, SearchConfig};

fn main() {
    // A racy bank account: both threads read the balance, then write the
    // incremented value back — each read-modify-write spans two separate
    // critical sections.
    let program = RuntimeProgram::new(|| {
        let balance = Arc::new(Mutex::new(100i64));
        let tellers: Vec<_> = (0..2)
            .map(|_| {
                let balance = Arc::clone(&balance);
                thread::spawn(move || {
                    let current = *balance.lock(); // read in one CS…
                    *balance.lock() = current + 10; // …write in another
                })
            })
            .collect();
        for t in tellers {
            t.join();
        }
        assert_eq!(*balance.lock(), 120, "a deposit was lost");
    });

    println!("searching for the bug in preemption order…");
    let report = Search::over(&program)
        .config(SearchConfig::bug_hunt())
        .run()
        .unwrap();
    let bug = report.first_bug().expect("the lost update is reachable");

    println!();
    println!("found: {}", bug.outcome);
    println!(
        "after {} executions, with {} preemption(s) — the minimum possible",
        bug.execution_index, bug.preemptions
    );
    println!("failing schedule: {}", bug.schedule);

    // The schedule is a complete reproduction recipe: replay it as many
    // times as you like.
    println!();
    println!("replaying the failing schedule 3 times…");
    let mut last_trace = None;
    for i in 1..=3 {
        let mut replay = ReplayScheduler::new(bug.schedule.clone());
        let result = program.execute(&mut replay, &mut NullSink);
        println!("  replay {i}: {}", result.outcome);
        assert_eq!(result.outcome, bug.outcome);
        last_trace = Some(result.trace);
    }

    println!();
    println!("the failing interleaving, lane by lane (`!` = preemption):");
    println!(
        "{}",
        icb::core::render::lanes(&last_trace.expect("replayed"))
    );
    println!();
    println!("deterministic reproduction confirmed.");
}
