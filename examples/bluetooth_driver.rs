//! The paper's Bluetooth PnP driver: find the known stop-vs-worker race,
//! then certify the fixed driver up to a preemption bound.
//!
//! ```sh
//! cargo run --release --example bluetooth_driver
//! ```

use icb::workloads::bluetooth::{bluetooth_program, BluetoothVariant};
use icb::{Search, SearchConfig};

fn main() {
    println!("== the buggy driver ==");
    let buggy = bluetooth_program(BluetoothVariant::Buggy, 2);
    let bug = Search::over(&buggy)
        .config(SearchConfig {
            max_executions: Some(200_000),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
        .bugs
        .into_iter()
        .next()
        .expect("the driver bug is reachable");
    println!("bug: {}", bug.outcome);
    println!(
        "minimal preemptions: {} (the paper found it at context bound 1)",
        bug.preemptions
    );
    println!("witness schedule: {}", bug.schedule);

    println!();
    println!("== the fixed driver ==");
    let fixed = bluetooth_program(BluetoothVariant::Fixed, 2);
    let config = SearchConfig {
        preemption_bound: Some(2),
        ..SearchConfig::default()
    };
    let report = Search::over(&fixed).config(config).run().unwrap();
    assert!(report.bugs.is_empty());
    println!(
        "explored {} executions, every execution with ≤ {} preemptions",
        report.executions,
        report.completed_bound.expect("bound completed"),
    );
    println!(
        "coverage certificate: no assertion failure, deadlock or data race \
         is reachable with at most {} preemptions.",
        report.completed_bound.unwrap()
    );
    for b in &report.bound_history {
        println!(
            "  bound {}: {} executions, {} distinct states",
            b.bound, b.executions, b.cumulative_states
        );
    }
}
