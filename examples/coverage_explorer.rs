//! Compare how fast each search strategy covers the state space of the
//! work-stealing queue — a miniature of the paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example coverage_explorer
//! ```

use icb::core::search::{
    BestFirstSearch, DfsSearch, IcbSearch, RandomSearch, SearchConfig, SearchStrategy,
};
use icb::statevm::reachable_states;
use icb::workloads::wsq::{wsq_model, WsqVariant};

fn main() {
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let total = reachable_states(&model, 10_000_000);
    println!("work-stealing queue: {total} reachable states");
    println!();

    let budget = 5_000;
    let config = SearchConfig::with_max_executions(budget);
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(IcbSearch::new(config.clone())),
        Box::new(RandomSearch::new(config.clone(), 42)),
        Box::new(DfsSearch::new(config.clone())),
        Box::new(DfsSearch::with_depth_bound(config.clone(), 20)),
        Box::new(BestFirstSearch::new(config.clone())),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "strategy", "executions", "states", "% covered"
    );
    for strategy in &strategies {
        let report = strategy.search(&model);
        println!(
            "{:<10} {:>12} {:>12} {:>9.1}%",
            report.strategy,
            report.executions,
            report.distinct_states,
            100.0 * report.distinct_states as f64 / total as f64
        );
    }

    println!();
    println!(
        "iterative context bounding reaches the most states per execution \
         because it spends its budget on the polynomially-many schedules \
         with few preemptions instead of re-exploring deep interleavings."
    );
}
