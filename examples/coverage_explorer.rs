//! Compare how fast each search strategy covers the state space of the
//! work-stealing queue — a miniature of the paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example coverage_explorer
//! ```

use icb::statevm::reachable_states;
use icb::workloads::wsq::{wsq_model, WsqVariant};
use icb::{Search, SearchConfig, Strategy};

fn main() {
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let total = reachable_states(&model, 10_000_000);
    println!("work-stealing queue: {total} reachable states");
    println!();

    let budget = 5_000;
    let config = SearchConfig::with_max_executions(budget);
    let strategies = [
        Strategy::Icb,
        Strategy::Random { seed: 42 },
        Strategy::Dfs,
        Strategy::DepthBounded(20),
        Strategy::BestFirst,
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "strategy", "executions", "states", "% covered"
    );
    for strategy in strategies {
        let report = Search::over(&model)
            .strategy(strategy)
            .config(config.clone())
            .run()
            .unwrap();
        println!(
            "{:<10} {:>12} {:>12} {:>9.1}%",
            report.strategy,
            report.executions,
            report.distinct_states,
            100.0 * report.distinct_states as f64 / total as f64
        );
    }

    println!();
    println!(
        "iterative context bounding reaches the most states per execution \
         because it spends its budget on the polynomially-many schedules \
         with few preemptions instead of re-exploring deep interleavings."
    );
}
