//! Figure 3 of the paper: the Dryad channel use-after-free.
//!
//! `Close()` returns once the workers acknowledged their STOP message —
//! but a worker still has cleanup (`AlertApplication`) to run against
//! the channel. One preemption right before `EnterCriticalSection` lets
//! the main thread delete the channel under the worker's feet. Depth-
//! first search drowns here (the paper ran it for hours without finding
//! the bug); ICB spends its single budgeted preemption at every step and
//! finds the window.
//!
//! ```sh
//! cargo run --release --example dryad_use_after_free
//! ```

use icb::core::{ControlledProgram, NullSink, ReplayScheduler};
use icb::workloads::dryad::{dryad_program, DryadVariant};
use icb::{Search, SearchConfig};

fn main() {
    let program = dryad_program(DryadVariant::CloseNoWait, 2, 2);

    println!("hunting the Figure 3 use-after-free…");
    let bug = Search::over(&program)
        .config(SearchConfig {
            max_executions: Some(500_000),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
        .bugs
        .into_iter()
        .next()
        .expect("Figure 3 bug is reachable");

    println!();
    println!("found: {}", bug.outcome);
    println!("executions explored: {}", bug.execution_index);
    println!("preemptions in the witness: {}", bug.preemptions);

    // The paper highlights that the failing trace has one preempting and
    // several nonpreempting context switches; count both by replaying.
    let mut replay = ReplayScheduler::new(bug.schedule.clone());
    let result = program.execute(&mut replay, &mut NullSink);
    println!(
        "context switches: {} total = {} preempting + {} nonpreempting",
        result.stats.context_switches,
        result.stats.preemptions,
        result.stats.context_switches - result.stats.preemptions
    );
    println!("steps in the failing execution: {}", result.stats.steps);
    println!();
    println!("schedule: {}", bug.schedule);
    assert_eq!(result.stats.preemptions, 1);
}
