//! A user guide, in three chapters: testing native programs, writing
//! explicit-state models, and interpreting search reports.
//!
//! The sub-modules contain no code — each is one chapter of
//! documentation, kept in rustdoc so it versions with the API it
//! describes.

/// # Chapter 1 — Testing a native Rust program
///
/// The stateless checker runs your real code under every interesting
/// interleaving. Three rules make a program testable:
///
/// 1. **Use the mocked primitives.** Everything in
///    [`icb_runtime::sync`](crate::runtime::sync) plus
///    [`thread::spawn`](crate::runtime::thread::spawn) and
///    [`DataVar`](crate::runtime::DataVar). Touching `std::sync` inside
///    the body escapes the scheduler: the checker can neither observe
///    nor control it.
/// 2. **Create state inside the closure.** Each explored schedule runs
///    the body again from scratch; primitives register themselves with
///    the current execution, so they must be constructed within it.
///    Share them across tasks with `Arc`.
/// 3. **Be deterministic and terminating.** Scheduling must be the only
///    source of nondeterminism (no wall-clock time, no I/O, no OS
///    randomness), and every schedule must terminate — blocking waits
///    instead of spin loops (a spinner is *enabled* forever, and the
///    preemption-free default policy will happily spin it into the step
///    limit).
///
/// Express correctness as ordinary `assert!`s inside the body; the
/// checker additionally reports deadlocks and data races on `DataVar`s
/// without any annotation. Then pick a search:
///
/// ```
/// use icb::{Search, SearchConfig};
/// use icb::runtime::{RuntimeProgram, sync::Mutex, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let total = Arc::new(Mutex::new(0));
///     let t = {
///         let total = Arc::clone(&total);
///         thread::spawn(move || *total.lock() += 1)
///     };
///     *total.lock() += 1;
///     t.join();
///     assert_eq!(*total.lock(), 2);
/// });
///
/// // Hunt: stop at the first bug, minimal preemptions guaranteed.
/// let hunt = Search::over(&program)
///     .config(SearchConfig::bug_hunt())
///     .run()
///     .unwrap();
/// assert!(hunt.bugs.is_empty());
///
/// // Certify: exhaust every execution with at most 2 preemptions.
/// let config = SearchConfig {
///     preemption_bound: Some(2),
///     ..SearchConfig::default()
/// };
/// let cert = Search::over(&program).config(config).run().unwrap();
/// assert!(cert.bugs.is_empty());
/// assert_eq!(cert.completed_bound, Some(2));
/// ```
pub mod testing_programs {}

/// # Chapter 2 — Writing an explicit-state model
///
/// When you need exact state counting, exhaustive reachability or
/// partial-order reduction — or when the system under test is a design
/// rather than code — write a [`Model`](crate::statevm::Model) with the
/// [`ModelBuilder`](crate::statevm::ModelBuilder) DSL.
///
/// A model is a fixed set of threads over global scalars, arrays and
/// locks. Each *shared* operation (`load`, `store`, `fetch_add`, `cas`,
/// `acquire`, `wait_*`, `yield_point`) is one step — one scheduling
/// point; local computation (`compute`, `jump*`, `assert`) is invisible
/// and free. Blocking is expressed with `acquire` and the `wait_*`
/// family: **never poll in a loop** — a spinning thread stays enabled
/// and defeats the search (use `wait_eq(done, n)` as the join idiom).
///
/// ```
/// use icb::statevm::{ModelBuilder, ExplicitIcb, ExplicitConfig, reachable_states};
///
/// let mut m = ModelBuilder::new();
/// let counter = m.global("counter", 0);
/// let lock = m.lock("m");
/// for _ in 0..2 {
///     m.thread("adder", |t| {
///         let v = t.local();
///         t.acquire(lock);
///         t.load(counter, v);
///         t.store(counter, v + 1);
///         t.release(lock);
///     });
/// }
/// let model = m.build();
///
/// // Exhaustive, with state caching (Algorithm 1 + table):
/// let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
/// assert!(report.completed);
/// assert_eq!(report.distinct_states, reachable_states(&model, 1_000_000));
/// println!("{}", model.disasm()); // inspect what the builder emitted
/// ```
///
/// Models also implement
/// [`ControlledProgram`](crate::core::ControlledProgram), so every
/// stateless strategy (and the coverage figures machinery) runs on them
/// unchanged.
pub mod writing_models {}

/// # Chapter 3 — Reading a report
///
/// [`SearchReport`](crate::core::search::SearchReport) fields, in the
/// order you should look at them:
///
/// * **`bugs`** — each [`BugReport`](crate::core::search::BugReport)
///   carries the failing `schedule`: feed it to
///   [`ReplayScheduler`](crate::core::ReplayScheduler) to reproduce the
///   failure deterministically, as many times as you like, under a
///   debugger if needed. For `IcbSearch` the *first* bug's
///   `preemptions` is minimal over all failing executions — the paper's
///   "simplest explanation" property. Render the replayed trace with
///   [`render::lanes`](crate::core::render::lanes).
/// * **`completed` / `completed_bound`** — the coverage certificate.
///   `completed_bound == Some(c)` with no bugs means *no assertion
///   failure, deadlock or data race is reachable with ≤ c preemptions*.
///   The paper's evaluation (and two decades of practice since) says
///   c = 2 already catches most real concurrency bugs.
/// * **`bound_history`** — executions and cumulative states per bound;
///   watch it to decide whether another bound is worth the budget
///   (Figure 1's curve flattens fast).
/// * **`distinct_states` / `coverage_curve`** — the paper's coverage
///   metric, comparable across strategies on the same program.
/// * **`max_stats`** — the largest `K` (steps), `B` (blocking steps)
///   and `c` (preemptions) observed; with Theorem 1
///   ([`bounds`](crate::core::bounds)) they estimate how expensive the
///   next bound will be.
/// * **`truncated`** — the search dropped deferred work (queue cap):
///   treat coverage claims as lower bounds.
///
/// A bug's `outcome` tells you what *kind* of failure to look for:
/// `AssertionFailure` (your invariant), `Deadlock` (the blocked set is
/// listed), or `DataRace` (two accesses unordered by happens-before —
/// fix the synchronization, not the assert; the race makes every other
/// verdict unreliable).
pub mod reading_reports {}
