//! **icb** — a reproduction of *"Iterative Context Bounding for Systematic
//! Testing of Multithreaded Programs"* (Musuvathi & Qadeer, PLDI 2007).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the ICB algorithm and the baseline search strategies.
//! * [`runtime`] — the stateless controlled-concurrency runtime (the
//!   paper's CHESS analog): write ordinary Rust closures against mocked
//!   synchronization primitives and explore every schedule.
//! * [`statevm`] — the explicit-state concurrent VM (the ZING analog)
//!   with state-caching model checking.
//! * [`race`] — vector clocks, happens-before fingerprints and data-race
//!   detection.
//! * [`workloads`] — the six benchmark programs of the paper's
//!   evaluation, with their seeded bugs.
//! * [`telemetry`] — concrete [`SearchObserver`](core::SearchObserver)
//!   sinks: in-memory metrics, JSONL event streams, live progress.
//! * [`cache`] — the persistent state-fingerprint cache: in-run
//!   subtree pruning, disk-backed segments and a cross-run
//!   certification ledger (bind one with
//!   [`Search::cache`](core::search::Search::cache)).
//!
//! # Quickstart
//!
//! ```
//! use icb::{Search, SearchConfig};
//! use icb::runtime::{RuntimeProgram, sync::Mutex, thread};
//! use std::sync::Arc;
//!
//! // A racy program: both threads do read-modify-write without holding
//! // the lock for the whole update.
//! let program = RuntimeProgram::new(|| {
//!     let counter = Arc::new(Mutex::new(0i32));
//!     let handles: Vec<_> = (0..2).map(|_| {
//!         let counter = Arc::clone(&counter);
//!         thread::spawn(move || {
//!             let v = *counter.lock();   // read
//!             *counter.lock() = v + 1;   // write lost-update race
//!         })
//!     }).collect();
//!     for h in handles { h.join(); }
//!     assert_eq!(*counter.lock(), 2, "lost update");
//! });
//!
//! let report = Search::over(&program)
//!     .config(SearchConfig::bug_hunt())
//!     .run()
//!     .unwrap();
//! let bug = report.first_bug().expect("lost update found");
//! assert_eq!(bug.preemptions, 1); // minimal: one preemption suffices
//! ```
//!
//! Every exploration — ICB, DFS, random walk, parallel (`.jobs(n)`),
//! checkpointed, resumed — goes through the same [`Search`] builder;
//! see [`core::search::Search`] for the full surface and the migration
//! table from the pre-builder entry points.

pub mod guide;

pub use icb_cache as cache;
pub use icb_core as core;
pub use icb_race as race;
pub use icb_runtime as runtime;
pub use icb_statevm as statevm;
pub use icb_telemetry as telemetry;
pub use icb_workloads as workloads;

pub use icb_core::search::{Frontier, Search, SearchConfig, SearchError, SearchReport, Strategy};
